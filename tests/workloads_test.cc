#include <gtest/gtest.h>

#include "src/sim/executor.h"
#include "src/workloads/spec_profiles.h"
#include "src/workloads/synth.h"

namespace memsentry::workloads {
namespace {

TEST(SpecProfilesTest, AllNineteenBenchmarks) {
  EXPECT_EQ(SpecCpu2006().size(), 19u);
  EXPECT_NE(FindProfile("429.mcf"), nullptr);
  EXPECT_NE(FindProfile("483.xalancbmk"), nullptr);
  EXPECT_EQ(FindProfile("999.nope"), nullptr);
}

TEST(SpecProfilesTest, WorkingSetsArePowersOfTwo) {
  for (const auto& p : SpecCpu2006()) {
    EXPECT_EQ(p.ws_kb & (p.ws_kb - 1), 0u) << p.name;
    EXPECT_GE(p.ws_kb, 64u) << p.name;
  }
}

TEST(SpecProfilesTest, RatesAreSane) {
  for (const auto& p : SpecCpu2006()) {
    EXPECT_GT(p.loads_per_ki, 50) << p.name;
    EXPECT_LT(p.loads_per_ki + p.stores_per_ki, 600) << p.name;
    EXPECT_GE(p.indirect_frac, 0.0) << p.name;
    EXPECT_LE(p.indirect_frac, 1.0) << p.name;
    EXPECT_GE(p.vec_pressure, 0) << p.name;
    EXPECT_LE(p.vec_pressure, 3) << p.name;
  }
}

class SynthesisTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SynthesisTest,
                         ::testing::Range<size_t>(0, 19), [](const auto& info) {
                           std::string name = SpecCpu2006()[info.param].name;
                           for (char& c : name) {
                             if (c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST_P(SynthesisTest, ProgramRunsAndMatchesMix) {
  const SpecProfile& profile = SpecCpu2006()[GetParam()];
  SynthOptions options;
  options.target_instructions = 150'000;
  ir::Module module = SynthesizeSpecProgram(profile, options);

  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(PrepareWorkloadProcess(process, profile).ok());
  sim::Executor executor(&process, &module);
  auto result = executor.Run();
  ASSERT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "");

  // Dynamic length near target.
  EXPECT_GT(result.instructions, 100'000u);
  EXPECT_LT(result.instructions, 300'000u);

  // Measured per-ki rates within 25% of the profile (tokens are exact; the
  // tolerance absorbs support-instruction dilution).
  const double ki = static_cast<double>(result.instructions) / 1000.0;
  EXPECT_NEAR(static_cast<double>(result.loads) / ki, profile.loads_per_ki,
              profile.loads_per_ki * 0.25 + 5)
      << profile.name;
  EXPECT_NEAR(static_cast<double>(result.stores) / ki, profile.stores_per_ki,
              profile.stores_per_ki * 0.25 + 5)
      << profile.name;
  EXPECT_NEAR(static_cast<double>(result.calls) / ki, profile.calls_per_ki,
              profile.calls_per_ki * 0.30 + 2)
      << profile.name;

  // CPI in a plausible band: cache-hot benchmarks near 1, memory-bound below 6.
  EXPECT_GT(result.Cpi(), 0.3) << profile.name;
  EXPECT_LT(result.Cpi(), 6.0) << profile.name;
}

TEST(SynthesisTest, DeterministicForSeed) {
  const SpecProfile& profile = SpecCpu2006()[0];
  SynthOptions options;
  options.target_instructions = 50'000;
  ir::Module a = SynthesizeSpecProgram(profile, options);
  ir::Module b = SynthesizeSpecProgram(profile, options);
  ASSERT_EQ(a.InstrCount(), b.InstrCount());
  // Execute both: identical dynamic behaviour.
  auto run = [&](const ir::Module& m) {
    sim::Machine machine;
    sim::Process process(&machine);
    EXPECT_TRUE(PrepareWorkloadProcess(process, profile).ok());
    sim::Executor executor(&process, &m);
    return executor.Run();
  };
  auto ra = run(a);
  auto rb = run(b);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_DOUBLE_EQ(ra.cycles, rb.cycles);
}

TEST(SynthesisTest, SeedChangesLayoutNotRates) {
  const SpecProfile& profile = SpecCpu2006()[2];  // gcc
  SynthOptions a;
  a.target_instructions = 100'000;
  SynthOptions b = a;
  b.seed = 123;
  ir::Module ma = SynthesizeSpecProgram(profile, a);
  ir::Module mb = SynthesizeSpecProgram(profile, b);
  auto run = [&](const ir::Module& m) {
    sim::Machine machine;
    sim::Process process(&machine);
    EXPECT_TRUE(PrepareWorkloadProcess(process, profile).ok());
    sim::Executor executor(&process, &m);
    return executor.Run();
  };
  auto ra = run(ma);
  auto rb = run(mb);
  const double la = static_cast<double>(ra.loads) / static_cast<double>(ra.instructions);
  const double lb = static_cast<double>(rb.loads) / static_cast<double>(rb.instructions);
  EXPECT_NEAR(la, lb, 0.02);
}

TEST(BuildLoopTest, IteratesExactly) {
  std::vector<ir::Instr> body = {
      ir::Instr{.op = ir::Opcode::kAddImm, .dst = machine::Gpr::kRbx, .imm = 1}};
  ir::Module m = BuildLoop(body, 100);
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.MapRange(sim::kWorkingSetBase, 1, machine::PageFlags::Data()).ok());
  sim::Executor executor(&process, &m);
  auto result = executor.Run();
  ASSERT_TRUE(result.halted);
  EXPECT_EQ(process.regs()[machine::Gpr::kRbx], 100u);
}

TEST(MemoryBehaviourTest, LargeWorkingSetsMissMore) {
  // mcf (64 MiB) must produce a worse CPI than hmmer (256 KiB).
  auto cpi_of = [](const char* name) {
    const SpecProfile* profile = FindProfile(name);
    SynthOptions options;
    options.target_instructions = 200'000;
    ir::Module module = SynthesizeSpecProgram(*profile, options);
    sim::Machine machine;
    sim::Process process(&machine);
    EXPECT_TRUE(PrepareWorkloadProcess(process, *profile).ok());
    sim::Executor executor(&process, &module);
    auto result = executor.Run();
    EXPECT_TRUE(result.halted);
    return result.Cpi();
  };
  EXPECT_GT(cpi_of("429.mcf"), cpi_of("456.hmmer") * 1.5);
}

}  // namespace
}  // namespace memsentry::workloads

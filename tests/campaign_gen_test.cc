// The generative campaign engine (src/attacks/campaign_gen.h): determinism
// of generation and execution, --jobs order independence, shrinker
// minimality, replay round-trips through the serialized spec, and the
// outcome classification's edges (timeouts, audit-off escapes, and the
// conservative no-signal default).
#include "src/attacks/campaign_gen.h"

#include <gtest/gtest.h>

#include "src/base/json.h"

namespace memsentry::attacks {
namespace {

TEST(CampaignSeedTest, MixesTechniqueAndIndexOrderIndependently) {
  const uint64_t suite = 0xca3a16e5ULL;
  EXPECT_EQ(CampaignSeed(suite, core::TechniqueKind::kMpk, 3),
            CampaignSeed(suite, core::TechniqueKind::kMpk, 3));
  EXPECT_NE(CampaignSeed(suite, core::TechniqueKind::kMpk, 3),
            CampaignSeed(suite, core::TechniqueKind::kMpk, 4));
  EXPECT_NE(CampaignSeed(suite, core::TechniqueKind::kMpk, 3),
            CampaignSeed(suite, core::TechniqueKind::kSfi, 3));
  EXPECT_NE(CampaignSeed(suite, core::TechniqueKind::kMpk, 3),
            CampaignSeed(suite ^ 1, core::TechniqueKind::kMpk, 3));
}

TEST(CampaignGenTest, GenerationIsAPureFunctionOfSeed) {
  for (int k = 0; k < core::kNumTechniques; ++k) {
    const auto kind = static_cast<core::TechniqueKind>(k);
    const uint64_t seed = CampaignSeed(7, kind, 11);
    const CampaignSpec a = GenerateCampaign(kind, seed, 11);
    const CampaignSpec b = GenerateCampaign(kind, seed, 11);
    EXPECT_EQ(a, b) << core::TechniqueKindName(kind);
    ASSERT_GE(a.steps.size(), 3u);  // 2..7 drawn steps + the cash-out
    EXPECT_EQ(a.steps.back().kind, StepKind::kCashOut);
  }
}

TEST(CampaignGenTest, ExecutionIsDeterministicForAFixedSpec) {
  for (int k = 0; k < core::kNumTechniques; ++k) {
    const auto kind = static_cast<core::TechniqueKind>(k);
    const CampaignSpec spec = GenerateCampaign(kind, CampaignSeed(3, kind, 0), 0);
    const CampaignConfig config;
    const CampaignResult a = RunCampaign(spec, config);
    const CampaignResult b = RunCampaign(spec, config);
    EXPECT_EQ(a.outcome, b.outcome) << core::TechniqueKindName(kind);
    EXPECT_EQ(a.steps_run, b.steps_run);
    EXPECT_EQ(a.budget_used, b.budget_used);
    EXPECT_EQ(a.probes, b.probes);
    EXPECT_EQ(a.repairs, b.repairs);
    EXPECT_EQ(a.note, b.note);
  }
}

TEST(CampaignSuiteTest, TalliesAreIdenticalForEveryJobsValue) {
  CampaignSuiteOptions options;
  options.seed = 99;
  options.campaigns_per_technique = 4;
  options.shrink_anomalies = false;  // shrinking is itself deterministic; keep the test fast

  options.jobs = 1;
  const CampaignSuiteResult serial = RunCampaignSuite(options);
  options.jobs = 8;
  const CampaignSuiteResult parallel = RunCampaignSuite(options);

  for (size_t k = 0; k < serial.per_technique.size(); ++k) {
    EXPECT_EQ(serial.per_technique[k].detected, parallel.per_technique[k].detected);
    EXPECT_EQ(serial.per_technique[k].degraded, parallel.per_technique[k].degraded);
    EXPECT_EQ(serial.per_technique[k].escaped, parallel.per_technique[k].escaped);
    EXPECT_EQ(serial.per_technique[k].timed_out, parallel.per_technique[k].timed_out);
    EXPECT_EQ(serial.per_technique[k].steps_run, parallel.per_technique[k].steps_run);
    EXPECT_EQ(serial.per_technique[k].probes, parallel.per_technique[k].probes);
  }
  ASSERT_EQ(serial.anomalies.size(), parallel.anomalies.size());
  for (size_t i = 0; i < serial.anomalies.size(); ++i) {
    EXPECT_EQ(serial.anomalies[i].spec, parallel.anomalies[i].spec);
    EXPECT_EQ(serial.anomalies[i].result.outcome, parallel.anomalies[i].result.outcome);
  }
}

TEST(CampaignSuiteTest, DefaultConfigurationHasZeroEscapes) {
  CampaignSuiteOptions options;
  options.campaigns_per_technique = 6;
  options.jobs = 8;
  options.shrink_anomalies = false;
  const CampaignSuiteResult suite = RunCampaignSuite(options);
  EXPECT_EQ(suite.total_escaped, 0u);
}

// Finds one escaping generated campaign under a weakened config. The
// audit-off configuration reliably leaks through gate races within the first
// few MPK campaigns.
CampaignSpec FindEscape(const CampaignConfig& config) {
  for (uint64_t index = 0; index < 64; ++index) {
    const uint64_t seed = CampaignSeed(0xca3a16e5ULL, core::TechniqueKind::kMpk, index);
    CampaignSpec spec = GenerateCampaign(core::TechniqueKind::kMpk, seed, index);
    if (RunCampaign(spec, config).outcome == CampaignOutcome::kEscaped) {
      return spec;
    }
  }
  return CampaignSpec{};
}

TEST(CampaignShrinkTest, ProducesMinimalStillEscapingReproducer) {
  CampaignConfig weakened;
  weakened.runtime_audit = false;
  const CampaignSpec spec = FindEscape(weakened);
  ASSERT_FALSE(spec.steps.empty()) << "no escaping campaign found under audit-off";

  const CampaignResult original = RunCampaign(spec, weakened);
  const CampaignSpec shrunk = ShrinkCampaign(spec, weakened);
  ASSERT_FALSE(shrunk.steps.empty());
  EXPECT_LE(shrunk.steps.size(), spec.steps.size());

  // The shrunk spec still reproduces the exact escape signature...
  const CampaignResult replay = RunCampaign(shrunk, weakened);
  EXPECT_EQ(replay.outcome, original.outcome);
  EXPECT_EQ(replay.leaked, original.leaked);
  EXPECT_EQ(replay.corrupted, original.corrupted);
  EXPECT_EQ(replay.exec_hijack, original.exec_hijack);

  // ...and is 1-minimal: removing any single remaining step changes it.
  for (size_t i = 0; i < shrunk.steps.size() && shrunk.steps.size() > 1; ++i) {
    CampaignSpec candidate = shrunk;
    candidate.steps.erase(candidate.steps.begin() + static_cast<long>(i));
    const CampaignResult r = RunCampaign(candidate, weakened);
    EXPECT_FALSE(r.outcome == original.outcome && r.leaked == original.leaked &&
                 r.corrupted == original.corrupted &&
                 r.exec_hijack == original.exec_hijack)
        << "step " << i << " was removable";
  }
}

TEST(CampaignReplayTest, JsonRoundTripReproducesTheOutcome) {
  CampaignConfig weakened;
  weakened.runtime_audit = false;
  const CampaignSpec spec = FindEscape(weakened);
  ASSERT_FALSE(spec.steps.empty());
  const CampaignResult original = RunCampaign(spec, weakened);

  const json::Value doc = CampaignToJson(spec, weakened, original.outcome);
  auto parsed_json = json::Parse(doc.Dump(0));
  ASSERT_TRUE(parsed_json.ok()) << parsed_json.status().ToString();
  auto parsed = CampaignFromJson(*parsed_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->spec, spec);  // bit-for-bit through the hex encoding
  EXPECT_EQ(parsed->config.mmap_policy, weakened.mmap_policy);
  EXPECT_EQ(parsed->config.runtime_audit, weakened.runtime_audit);
  EXPECT_EQ(parsed->config.step_budget, weakened.step_budget);
  EXPECT_EQ(parsed->expected, original.outcome);
  EXPECT_EQ(RunCampaign(parsed->spec, parsed->config).outcome, original.outcome);
}

TEST(CampaignReplayTest, RejectsForeignOrMangledSpecs) {
  json::Value not_campaign = json::Value::Object();
  not_campaign.Set("kind", "fault_cell");
  EXPECT_FALSE(CampaignFromJson(not_campaign).ok());

  json::Value bad_step = CampaignToJson(
      GenerateCampaign(core::TechniqueKind::kSfi, 1, 0), CampaignConfig{},
      CampaignOutcome::kDetected);
  bad_step.Find("steps")->items()[0].Set("op", "warp-drive");
  EXPECT_FALSE(CampaignFromJson(bad_step).ok());
}

TEST(CampaignOutcomeTest, ExhaustedBudgetClassifiesAsTimeout) {
  CampaignSpec spec;
  spec.technique = core::TechniqueKind::kSfi;
  spec.seed = 5;
  // A sweep far larger than the budget, with no escape signal available.
  spec.steps = {CampaignStep{StepKind::kProbeSweep, /*a=*/1, /*b=*/1, /*c=*/64}};
  CampaignConfig config;
  config.step_budget = 8;
  const CampaignResult result = RunCampaign(spec, config);
  EXPECT_EQ(result.outcome, CampaignOutcome::kTimedOut);
  EXPECT_GT(result.budget_used, config.step_budget);
}

TEST(CampaignOutcomeTest, GateRaceEscapesOnlyWithoutTheAudit) {
  CampaignSpec spec;
  spec.technique = core::TechniqueKind::kMpk;
  spec.seed = 9;
  spec.steps = {CampaignStep{StepKind::kGateRace, 0, 0, 0}};

  CampaignConfig audited;
  const CampaignResult held = RunCampaign(spec, audited);
  EXPECT_EQ(held.outcome, CampaignOutcome::kDegraded);  // audit repaired the window
  EXPECT_GT(held.repairs, 0);
  EXPECT_FALSE(held.leaked);

  CampaignConfig weakened;
  weakened.runtime_audit = false;
  const CampaignResult escaped = RunCampaign(spec, weakened);
  EXPECT_EQ(escaped.outcome, CampaignOutcome::kEscaped);
  EXPECT_TRUE(escaped.leaked);
}

TEST(CampaignOutcomeTest, NoSignalClassifiesAsConservativeEscape) {
  // An empty campaign produces no containment signal at all; the classifier
  // must refuse to call that a success for the defense.
  CampaignSpec spec;
  spec.technique = core::TechniqueKind::kSfi;
  spec.seed = 1;
  const CampaignResult result = RunCampaign(spec, CampaignConfig{});
  EXPECT_EQ(result.outcome, CampaignOutcome::kEscaped);
  EXPECT_FALSE(result.leaked);
  EXPECT_FALSE(result.corrupted);
  EXPECT_FALSE(result.exec_hijack);
}

TEST(CampaignNamesTest, RoundTripEveryEnum) {
  for (int i = 0; i < kNumStepKinds; ++i) {
    const auto kind = static_cast<StepKind>(i);
    const auto back = StepKindFromName(StepKindName(kind));
    ASSERT_TRUE(back.has_value()) << StepKindName(kind);
    EXPECT_EQ(*back, kind);
  }
  for (int i = 0; i < 4; ++i) {
    const auto outcome = static_cast<CampaignOutcome>(i);
    const auto back = CampaignOutcomeFromName(CampaignOutcomeName(outcome));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, outcome);
  }
}

}  // namespace
}  // namespace memsentry::attacks

// ShardCoordinator fault-tolerance contract (DESIGN.md §12):
//  - the merged report is byte-identical to a serial single-engine run at
//    any worker count, with real `memsentry_cli serve` subprocess workers;
//  - the chaos harness (kill / hang / garble, seeded) perturbs scheduling
//    only: the report still converges to the clean run's exact bytes;
//  - total worker loss degrades to in-process execution — the suite always
//    completes, flagged `degraded`;
//  - restore/on_cell_done durability hooks mirror the engine's semantics;
//  - the chaos schedule is a pure function of (seed, workload, cell,
//    attempt) and re-dispatched attempts always run clean.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/eval/campaign_engine.h"
#include "src/eval/coordinator.h"
#include "src/eval/serve.h"
#include "src/suite/workloads.h"

#if !defined(_WIN32) && defined(MEMSENTRY_CLI)

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <mutex>

namespace memsentry {
namespace {

eval::WorkloadOptions QuickOptions() {
  eval::WorkloadOptions options;
  options.quick = true;
  options.experiment.target_instructions = 100'000;
  return options;
}

// Small, fast registered workloads (same subset the engine tests use) so a
// full chaos schedule still finishes in seconds.
const std::vector<std::string>& TestWorkloads() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"fault_matrix", "table4_micro", "ablations"};
  return *names;
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "ms_coord_" + name + "_" + std::to_string(::getpid());
  std::system(("rm -rf \"" + dir + "\" && mkdir -p \"" + dir + "\"").c_str());
  return dir;
}

// Serial single-engine reference: the byte stream every coordinator run
// must reproduce.
void RunSerial(std::map<std::string, std::string>* metrics_out) {
  eval::EngineOptions options;
  options.jobs = 1;
  eval::CampaignEngine engine(&suite::SuiteRegistry(), std::move(options));
  for (const std::string& name : TestWorkloads()) {
    const uint64_t id = engine.Submit(name, QuickOptions());
    ASSERT_NE(id, 0u) << name;
    const eval::JobReport* report = engine.Wait(id);
    ASSERT_NE(report, nullptr);
    ASSERT_EQ(report->state, eval::JobState::kDone) << name;
    ASSERT_EQ(report->status, 0) << name;
    (*metrics_out)[name] = report->report.metrics().Dump(0);
  }
}

// Drives a full coordinator run over the test workloads and serializes each
// job's metric stream.
void RunShard(eval::CoordinatorOptions options, const std::string& dir_tag,
              std::map<std::string, std::string>* metrics_out,
              eval::CoordinatorStats* stats_out = nullptr) {
  if (options.worker_cli.empty()) {
    options.worker_cli = MEMSENTRY_CLI;
  }
  options.socket_dir = FreshDir(dir_tag);
  options.quiet = true;
  eval::ShardCoordinator coordinator(&suite::SuiteRegistry(), std::move(options));
  for (const std::string& name : TestWorkloads()) {
    ASSERT_NE(coordinator.Submit(name, QuickOptions()), 0u) << name;
  }
  EXPECT_EQ(coordinator.Run(), 0);
  for (const auto& report : coordinator.reports()) {
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(report->state, eval::JobState::kDone) << report->workload;
    EXPECT_EQ(report->status, 0) << report->workload;
    EXPECT_EQ(report->cell_names.size(), report->cell_seconds.size());
    (*metrics_out)[report->workload] = report->report.metrics().Dump(0);
  }
  if (stats_out != nullptr) {
    *stats_out = coordinator.stats();
  }
}

// How many first-attempt cells a chaos config fires on, computed from the
// same pure schedule function the server uses.
size_t ExpectedChaosHits(const eval::ServeChaos& chaos) {
  size_t hits = 0;
  for (const std::string& name : TestWorkloads()) {
    const eval::Workload* workload = suite::FindSuiteWorkload(name);
    EXPECT_NE(workload, nullptr) << name;
    if (workload == nullptr) {
      continue;
    }
    for (const eval::WorkloadCell& cell : workload->cells(QuickOptions())) {
      hits += !eval::ChaosDecision(chaos, name, cell.name, 1).empty();
    }
  }
  return hits;
}

TEST(ShardCoordinator, ChaosSpecParsesAndScheduleIsDeterministic) {
  auto parsed = eval::ParseChaosSpec("kill,hang,garble:seed=7:one_in=5:hang_ms=1234");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(parsed->kill);
  EXPECT_TRUE(parsed->hang);
  EXPECT_TRUE(parsed->garble);
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_EQ(parsed->one_in, 5u);
  EXPECT_EQ(parsed->hang_ms, 1234u);
  // Format round-trips through the parser.
  auto again = eval::ParseChaosSpec(parsed->Format());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Format(), parsed->Format());

  EXPECT_FALSE(eval::ParseChaosSpec("").ok());
  EXPECT_FALSE(eval::ParseChaosSpec("explode:seed=1").ok());
  EXPECT_FALSE(eval::ParseChaosSpec("kill:seed=x").ok());
  EXPECT_FALSE(eval::ParseChaosSpec("kill:one_in=0").ok());
  EXPECT_FALSE(eval::ParseChaosSpec("kill:bogus=1").ok());

  // The schedule is a pure function of (seed, workload, cell, attempt):
  // stable across calls, only enabled modes, and attempts >= 2 always run
  // clean (the termination guarantee re-dispatch leans on).
  const eval::ServeChaos chaos = *parsed;
  bool fired = false;
  for (int i = 0; i < 64; ++i) {
    const std::string cell = "cell-" + std::to_string(i);
    const std::string first = eval::ChaosDecision(chaos, "w", cell, 1);
    EXPECT_EQ(first, eval::ChaosDecision(chaos, "w", cell, 1));
    EXPECT_TRUE(first.empty() || first == "kill" || first == "hang" || first == "garble")
        << first;
    fired |= !first.empty();
    EXPECT_EQ(eval::ChaosDecision(chaos, "w", cell, 2), "");
    EXPECT_EQ(eval::ChaosDecision(chaos, "w", cell, 3), "");
  }
  EXPECT_TRUE(fired);

  eval::ServeChaos kill_only;
  kill_only.kill = true;
  kill_only.seed = 11;
  for (int i = 0; i < 64; ++i) {
    const std::string mode =
        eval::ChaosDecision(kill_only, "w", "cell-" + std::to_string(i), 1);
    EXPECT_TRUE(mode.empty() || mode == "kill") << mode;
  }
}

// The core contract: real subprocess workers at any worker count produce
// the serial engine's exact bytes.
TEST(ShardCoordinator, CleanRunMatchesSerialAtAnyWorkerCount) {
  std::map<std::string, std::string> serial;
  ASSERT_NO_FATAL_FAILURE(RunSerial(&serial));
  ASSERT_EQ(serial.size(), TestWorkloads().size());

  for (const int workers : {1, 3}) {
    eval::CoordinatorOptions options;
    options.workers = workers;
    std::map<std::string, std::string> shard;
    eval::CoordinatorStats stats;
    ASSERT_NO_FATAL_FAILURE(
        RunShard(std::move(options), "clean_w" + std::to_string(workers), &shard, &stats));
    EXPECT_EQ(shard, serial) << "workers=" << workers;
    EXPECT_GT(stats.cells_total, 0u);
    EXPECT_EQ(stats.cells_inlined, 0u);
    EXPECT_FALSE(stats.degraded);
  }
}

// Chaos perturbs scheduling only: with kill/hang/garble firing on a seeded
// subset of first attempts, the report still converges to the clean bytes.
TEST(ShardCoordinator, ChaosRunsConvergeToCleanReport) {
  std::map<std::string, std::string> serial;
  ASSERT_NO_FATAL_FAILURE(RunSerial(&serial));

  for (const uint64_t seed : {7ull, 2ull}) {
    eval::ServeChaos chaos;
    chaos.kill = chaos.hang = chaos.garble = true;
    chaos.seed = seed;
    chaos.one_in = 3;
    chaos.hang_ms = 5000;  // > lease below, so hangs surface as expiries
    ASSERT_GT(ExpectedChaosHits(chaos), 0u) << "seed " << seed;

    eval::CoordinatorOptions options;
    options.workers = 3;
    options.lease_seconds = 2.0;
    options.chaos = chaos;
    std::map<std::string, std::string> shard;
    eval::CoordinatorStats stats;
    ASSERT_NO_FATAL_FAILURE(
        RunShard(std::move(options), "chaos_s" + std::to_string(seed), &shard, &stats));
    EXPECT_EQ(shard, serial) << "seed " << seed;
    // Every chaos hit costs the victim cell a re-dispatch (or, past the
    // attempt cap / under quarantine, an inline run).
    EXPECT_GT(stats.cells_redispatched + stats.cells_inlined, 0u) << "seed " << seed;
  }
}

// Total worker loss: every spawn fails, every worker quarantines, and the
// suite still completes in-process with the clean report, flagged degraded.
TEST(ShardCoordinator, DegradesToInlineWhenAllWorkersDie) {
  std::map<std::string, std::string> serial;
  ASSERT_NO_FATAL_FAILURE(RunSerial(&serial));

  eval::CoordinatorOptions options;
  options.worker_cli = "/bin/false";  // serve never comes up
  options.workers = 2;
  options.connect_attempts = 2;  // keep the spawn/backoff ladder short
  options.quarantine_after = 1;
  std::map<std::string, std::string> shard;
  eval::CoordinatorStats stats;
  ASSERT_NO_FATAL_FAILURE(RunShard(std::move(options), "degraded", &shard, &stats));
  EXPECT_EQ(shard, serial);
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.workers_quarantined, 2u);
  EXPECT_EQ(stats.cells_inlined, stats.cells_total);
}

// Durability hooks mirror the engine: payloads recorded via on_cell_done
// and fed back through restore complete every cell without a single
// dispatch, and assembly reproduces the identical stream.
TEST(ShardCoordinator, RestoredCellsSkipDispatchAndReproduceMetrics) {
  std::mutex mutex;
  std::map<std::string, json::Value> payloads;
  eval::CoordinatorOptions record;
  record.workers = 2;
  record.on_cell_done = [&](const std::string& workload, const std::string& cell,
                            const json::Value& payload) {
    std::lock_guard<std::mutex> lock(mutex);
    payloads[workload + "/" + cell] = payload;
  };
  std::map<std::string, std::string> first;
  eval::CoordinatorStats first_stats;
  ASSERT_NO_FATAL_FAILURE(RunShard(std::move(record), "record", &first, &first_stats));
  ASSERT_GT(payloads.size(), 0u);
  EXPECT_EQ(first_stats.cells_total, payloads.size());
  EXPECT_EQ(first_stats.cells_restored, 0u);

  eval::CoordinatorOptions restore;
  restore.workers = 2;
  restore.restore = [&](const std::string& workload,
                        const std::string& cell) -> const json::Value* {
    auto it = payloads.find(workload + "/" + cell);
    return it == payloads.end() ? nullptr : &it->second;
  };
  std::map<std::string, std::string> second;
  eval::CoordinatorStats second_stats;
  ASSERT_NO_FATAL_FAILURE(RunShard(std::move(restore), "restore", &second, &second_stats));
  EXPECT_EQ(first, second);
  EXPECT_EQ(second_stats.cells_restored, payloads.size());
  EXPECT_EQ(second_stats.cells_dispatched, 0u);
}

}  // namespace
}  // namespace memsentry

#endif  // !_WIN32 && MEMSENTRY_CLI

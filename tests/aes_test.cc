#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/aes/aes128.h"

namespace memsentry::aes {
namespace {

Block FromHex(const char* hex) {
  Block b{};
  for (int i = 0; i < kBlockSize; ++i) {
    unsigned v = 0;
    sscanf(hex + 2 * i, "%2x", &v);
    b[static_cast<size_t>(i)] = static_cast<uint8_t>(v);
  }
  return b;
}

// FIPS-197 Appendix B / C.1 vectors.
const char* kKeyHex = "000102030405060708090a0b0c0d0e0f";
const char* kPlainHex = "00112233445566778899aabbccddeeff";
const char* kCipherHex = "69c4e0d86a7b0430d8cdb78070b4c55a";

TEST(AesTest, Fips197EncryptVector) {
  const KeySchedule keys = ExpandKey(FromHex(kKeyHex));
  EXPECT_EQ(EncryptBlock(FromHex(kPlainHex), keys), FromHex(kCipherHex));
}

TEST(AesTest, Fips197DecryptVector) {
  const KeySchedule keys = ExpandKey(FromHex(kKeyHex));
  EXPECT_EQ(DecryptBlock(FromHex(kCipherHex), keys), FromHex(kPlainHex));
}

TEST(AesTest, Fips197AppendixAKeyExpansion) {
  // FIPS-197 Appendix A.1: key 2b7e151628aed2a6abf7158809cf4f3c.
  const KeySchedule keys = ExpandKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(keys[1], FromHex("a0fafe1788542cb123a339392a6c7605"));
  EXPECT_EQ(keys[10], FromHex("d014f9a8c9ee2589e13f0cc8b6630ca6"));
}

TEST(AesTest, Fips197AppendixBKnownAnswer) {
  // FIPS-197 Appendix B: key 2b7e1516..., input 3243f6a8885a308d313198a2e0370734.
  const KeySchedule keys = ExpandKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(EncryptBlock(FromHex("3243f6a8885a308d313198a2e0370734"), keys),
            FromHex("3925841d02dc09fbdc118597196a0b32"));
}

TEST(AesTest, RoundTripManyBlocks) {
  const KeySchedule keys = ExpandKey(FromHex(kKeyHex));
  Block b{};
  for (int trial = 0; trial < 64; ++trial) {
    for (int i = 0; i < kBlockSize; ++i) {
      b[static_cast<size_t>(i)] = static_cast<uint8_t>(trial * 31 + i * 7);
    }
    EXPECT_EQ(DecryptBlock(EncryptBlock(b, keys), keys), b);
  }
}

TEST(AesTest, SboxSpotValues) {
  // Computed S-box must match the published table at known points:
  // S(0x00)=0x63, S(0x53)=0xed (both from FIPS-197 Figure 7).
  const KeySchedule keys = ExpandKey(Block{});  // forces table construction
  (void)keys;
  // Verify indirectly: encrypting zeroes with a zero key gives the published
  // value 66e94bd4ef8a2c3b884cfa59ca342b2e.
  EXPECT_EQ(EncryptBlock(Block{}, ExpandKey(Block{})),
            FromHex("66e94bd4ef8a2c3b884cfa59ca342b2e"));
}

TEST(AesTest, InverseScheduleMatchesImcSemantics) {
  const KeySchedule enc = ExpandKey(FromHex(kKeyHex));
  const KeySchedule dec = InverseKeySchedule(enc);
  // Keys 0 and 10 pass through unchanged; middle keys are InvMixColumns'd.
  EXPECT_EQ(dec[0], enc[0]);
  EXPECT_EQ(dec[10], enc[10]);
  for (int r = 1; r < 10; ++r) {
    EXPECT_EQ(dec[static_cast<size_t>(r)], InvMixColumnsBlock(enc[static_cast<size_t>(r)]));
    EXPECT_NE(dec[static_cast<size_t>(r)], enc[static_cast<size_t>(r)]);
  }
}

TEST(AesTest, RoundFunctionsComposeToFullCipher) {
  const KeySchedule keys = ExpandKey(FromHex(kKeyHex));
  Block state = FromHex(kPlainHex);
  for (int i = 0; i < kBlockSize; ++i) {
    state[static_cast<size_t>(i)] ^= keys[0][static_cast<size_t>(i)];
  }
  for (int r = 1; r < kNumRounds; ++r) {
    state = EncryptRound(state, keys[static_cast<size_t>(r)]);
  }
  state = EncryptLastRound(state, keys[kNumRounds]);
  EXPECT_EQ(state, FromHex(kCipherHex));
}

TEST(CryptRegionTest, IsAnInvolution) {
  const KeySchedule keys = ExpandKey(FromHex(kKeyHex));
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  const std::vector<uint8_t> original = data;
  CryptRegion(data, keys, /*nonce=*/42);
  EXPECT_NE(data, original);
  CryptRegion(data, keys, /*nonce=*/42);
  EXPECT_EQ(data, original);
}

TEST(CryptRegionTest, NonceSeparatesKeystreams) {
  const KeySchedule keys = ExpandKey(FromHex(kKeyHex));
  std::vector<uint8_t> a(32, 0);
  std::vector<uint8_t> b(32, 0);
  CryptRegion(a, keys, 1);
  CryptRegion(b, keys, 2);
  EXPECT_NE(a, b);
}

TEST(CryptRegionTest, HandlesNonBlockMultiples) {
  const KeySchedule keys = ExpandKey(FromHex(kKeyHex));
  for (size_t size : {1u, 15u, 16u, 17u, 31u, 1024u}) {
    std::vector<uint8_t> data(size, 0x5a);
    const std::vector<uint8_t> original = data;
    CryptRegion(data, keys, 7);
    CryptRegion(data, keys, 7);
    EXPECT_EQ(data, original) << "size " << size;
  }
}

TEST(CryptRegionTest, CiphertextLooksUniform) {
  const KeySchedule keys = ExpandKey(FromHex(kKeyHex));
  std::vector<uint8_t> data(4096, 0);
  CryptRegion(data, keys, 99);
  // Crude sanity: byte histogram roughly flat (chi-style bound, generous).
  int counts[256] = {0};
  for (uint8_t byte : data) {
    ++counts[byte];
  }
  for (int c : counts) {
    EXPECT_LT(c, 64);  // mean is 16
  }
}

}  // namespace
}  // namespace memsentry::aes

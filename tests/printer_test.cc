#include <gtest/gtest.h>

#include "src/core/memsentry.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace memsentry::ir {
namespace {

using machine::Gpr;

TEST(PrinterTest, InstructionForms) {
  EXPECT_EQ(ToString(Instr{.op = Opcode::kMovImm, .dst = Gpr::kRax, .imm = 0x1234}),
            "mov.imm rax, 0x1234");
  EXPECT_EQ(ToString(Instr{.op = Opcode::kLoad, .dst = Gpr::kRbx, .src = Gpr::kR9}),
            "load rbx, [r9]");
  EXPECT_EQ(ToString(Instr{.op = Opcode::kStore, .dst = Gpr::kR9, .src = Gpr::kRbx}),
            "store [r9], rbx");
  EXPECT_EQ(ToString(Instr{.op = Opcode::kLea, .dst = Gpr::kR9, .src = Gpr::kR8,
                           .imm = static_cast<uint64_t>(-8)}),
            "lea r9, [r8-8]");
  EXPECT_EQ(ToString(Instr{.op = Opcode::kBndcu, .src = Gpr::kR9, .imm = 0}),
            "bndcu bnd0, r9");
  EXPECT_EQ(ToString(Instr{.op = Opcode::kJmp, .target = 3}), "jmp bb3");
  EXPECT_EQ(ToString(Instr{.op = Opcode::kRet}), "ret");
}

TEST(PrinterTest, FlagsAppearAsComments) {
  Instr instr{.op = Opcode::kWrpkru, .imm = 0xc};
  instr.flags = kFlagInstrumentation;
  EXPECT_EQ(ToString(instr), "wrpkru 0xc  ; [instrumentation]");
  instr.flags |= kFlagCritical;
  EXPECT_EQ(ToString(instr), "wrpkru 0xc  ; [instrumentation, critical]");
}

TEST(PrinterTest, ModuleListing) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRax, 1);
  b.Halt();
  const std::string text = ToString(m);
  EXPECT_NE(text.find("; entry"), std::string::npos);
  EXPECT_NE(text.find("func @main {"), std::string::npos);
  EXPECT_NE(text.find("bb0:"), std::string::npos);
  EXPECT_NE(text.find("mov.imm rax, 0x1"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(PrinterTest, InstrumentedModuleShowsChecks) {
  // The printer is how humans audit what the MemSentry pass actually did.
  sim::Machine machine;
  sim::Process process(&machine);
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kMpx;
  core::MemSentry ms(&process, config);
  ASSERT_TRUE(ms.allocator().Alloc("r", 4096).ok());
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR9, sim::kWorkingSetBase);
  b.Load(Gpr::kRbx, Gpr::kR9);
  b.Halt();
  ASSERT_TRUE(ms.Protect(m).ok());
  const std::string text = ToString(m);
  EXPECT_NE(text.find("bndcu bnd0, r9  ; [instrumentation]"), std::string::npos);
}

}  // namespace
}  // namespace memsentry::ir

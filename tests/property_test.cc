// Property-based tests: invariants swept over parameter spaces with
// deterministic randomness — protection-key lattices, mask algebra, crypt
// involutions at many sizes, deep call chains, cross-technique determinism,
// and attack outcomes across region sizes.
#include <gtest/gtest.h>

#include "src/attacks/harness.h"
#include "src/base/rng.h"
#include "src/core/memsentry.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/sim/executor.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

using machine::Gpr;

// ---- MPK: every key x every PKRU bit combination behaves per the SDM ----

class PkeyLatticeTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(AllKeys, PkeyLatticeTest, ::testing::Range(0, 16));

TEST_P(PkeyLatticeTest, AdAndWdBitsComposeCorrectly) {
  const uint8_t key = static_cast<uint8_t>(GetParam());
  machine::PhysicalMemory pmem(1 << 14);
  machine::CostModel cost;
  machine::PageTable pt(&pmem);
  machine::Mmu mmu(&pmem, &cost);
  mmu.SetPageTable(&pt);
  machine::PageFlags flags = machine::PageFlags::Data();
  flags.pkey = key;
  ASSERT_TRUE(pt.MapNew(0x4000, flags).ok());

  for (int ad = 0; ad <= 1; ++ad) {
    for (int wd = 0; wd <= 1; ++wd) {
      machine::Pkru pkru{};
      pkru.SetAccessDisable(key, ad != 0);
      pkru.SetWriteDisable(key, wd != 0);
      const bool read_ok = mmu.Access(0x4000, machine::AccessType::kRead, pkru).ok();
      const bool write_ok = mmu.Access(0x4000, machine::AccessType::kWrite, pkru).ok();
      EXPECT_EQ(read_ok, ad == 0) << "key " << int{key} << " ad " << ad;
      EXPECT_EQ(write_ok, ad == 0 && wd == 0) << "key " << int{key} << " wd " << wd;
      // Other keys must be completely unaffected.
      machine::Pkru other{};
      other.SetAccessDisable((key + 1) % 16, true);
      other.SetWriteDisable((key + 1) % 16, true);
      EXPECT_TRUE(mmu.Access(0x4000, machine::AccessType::kRead, other).ok());
    }
  }
}

// ---- SFI mask algebra ----

TEST(SfiMaskPropertyTest, IdempotentAndAlwaysBelowSplit) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const VirtAddr va = rng.Next() & (kAddressSpaceEnd - 1);
    const VirtAddr masked = va & kSfiMask;
    EXPECT_LT(masked, kPartitionSplit);
    EXPECT_EQ(masked & kSfiMask, masked);          // idempotent
    if (va < kPartitionSplit) {
      EXPECT_EQ(masked, va);                        // identity below the split
    }
    EXPECT_EQ(PageOffset(masked), PageOffset(va));  // offsets preserved
  }
}

// ---- crypt involution across sizes and nonces ----

class CryptSizePropertyTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CryptSizePropertyTest,
                         ::testing::Values(1, 7, 8, 15, 16, 17, 31, 32, 33, 48, 100, 256,
                                           1000, 4096));

TEST_P(CryptSizePropertyTest, ToggleTwiceRestores) {
  const size_t size = GetParam();
  Rng rng(size);
  aes::Block key{};
  for (auto& byte : key) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  const aes::KeySchedule keys = aes::ExpandKey(key);
  std::vector<uint8_t> data(size);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  const std::vector<uint8_t> original = data;
  aes::CryptRegion(data, keys, /*nonce=*/size);
  if (size >= 8) {
    EXPECT_NE(data, original);  // tiny sizes could collide by chance
  }
  aes::CryptRegion(data, keys, /*nonce=*/size);
  EXPECT_EQ(data, original);
}

TEST_P(CryptSizePropertyTest, PrefixStability) {
  // The keystream is position-based: encrypting a longer region agrees with
  // the shorter region on the common prefix (block-aligned property).
  const size_t size = GetParam();
  const aes::KeySchedule keys = aes::ExpandKey(aes::Block{1, 2, 3});
  std::vector<uint8_t> a(size, 0xab);
  std::vector<uint8_t> b(size + 32, 0xab);
  aes::CryptRegion(a, keys, 7);
  aes::CryptRegion(b, keys, 7);
  for (size_t i = 0; i < size; ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

// ---- deep call chains: the simulated stack and RA encoding hold up ----

TEST(CallDepthPropertyTest, DeepRecursionBalances) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  // f(n): if (--counter != 0) call f; ret. 1000 nested activations.
  ir::Module m;
  ir::Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR13, 1000);
  b.Call(1);
  b.Halt();
  b.CreateFunction("rec");
  const int done = b.NewBlock();
  b.AddImm(Gpr::kRbx, 1);
  b.AddImm(Gpr::kR13, -1);  // last flag setter before the branch
  b.CondBr(2);  // taken (counter != 0) -> recurse block
  b.SetInsertPoint(1, done);
  b.Ret();
  const int recurse = b.NewBlock();
  b.SetInsertPoint(1, recurse);
  b.Call(1);
  b.Ret();
  // Block layout: 0 = body, 1 = done (fallthrough), 2 = recurse.
  sim::Executor executor(&process, &m);
  auto result = executor.Run();
  ASSERT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "");
  EXPECT_EQ(process.regs()[Gpr::kRbx], 1000u);
  EXPECT_EQ(result.calls, result.rets);
}

TEST(CallDepthPropertyTest, RunawayRecursionHitsDepthGuard) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack(/*pages=*/4096).ok());
  ir::Module m;
  ir::Builder b(&m);
  b.CreateFunction("main");
  b.Call(1);
  b.Halt();
  b.CreateFunction("forever");
  b.Call(1);
  b.Ret();
  sim::Executor executor(&process, &m);
  auto result = executor.Run();
  ASSERT_TRUE(result.fault.has_value());
  EXPECT_EQ(result.fault->type, machine::FaultType::kGeneralProtection);
}

// ---- determinism across techniques ----

class DeterminismTest : public ::testing::TestWithParam<core::TechniqueKind> {};

INSTANTIATE_TEST_SUITE_P(Techniques, DeterminismTest,
                         ::testing::Values(core::TechniqueKind::kSfi, core::TechniqueKind::kMpx,
                                           core::TechniqueKind::kMpk,
                                           core::TechniqueKind::kVmfunc,
                                           core::TechniqueKind::kCrypt),
                         [](const auto& info) {
                           return std::string(core::TechniqueKindName(info.param));
                         });

TEST_P(DeterminismTest, TwoIdenticalRunsProduceIdenticalCycles) {
  auto run = [&]() {
    sim::Machine machine;
    sim::Process process(&machine);
    if (GetParam() == core::TechniqueKind::kVmfunc) {
      EXPECT_TRUE(process.EnableDune().ok());
    }
    const auto& profile = *workloads::FindProfile("458.sjeng");
    EXPECT_TRUE(workloads::PrepareWorkloadProcess(process, profile).ok());
    core::MemSentryConfig config;
    config.technique = GetParam();
    core::MemSentry ms(&process, config);
    EXPECT_TRUE(ms.allocator().Alloc("r", GetParam() == core::TechniqueKind::kCrypt ? 16 : 4096)
                    .ok());
    workloads::SynthOptions synth;
    synth.target_instructions = 60'000;
    ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);
    EXPECT_TRUE(ms.Protect(module).ok());
    sim::Executor executor(&process, &module);
    return executor.Run();
  };
  auto a = run();
  auto b = run();
  EXPECT_TRUE(a.halted);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.domain_switches, b.domain_switches);
}

// ---- attack outcomes are invariant across region sizes ----

class AttackSizeTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(RegionSizes, AttackSizeTest,
                         ::testing::Values(16, 64, 4096, 65536));

TEST_P(AttackSizeTest, DeterministicTechniquesHoldAtEverySize) {
  for (auto kind : {core::TechniqueKind::kMpx, core::TechniqueKind::kMpk,
                    core::TechniqueKind::kCrypt}) {
    const auto report = attacks::RunAttackScenario(kind, GetParam());
    EXPECT_NE(report.read_outcome, attacks::Outcome::kLeaked)
        << core::TechniqueKindName(kind) << " @ " << GetParam();
    EXPECT_NE(report.write_outcome, attacks::Outcome::kCorrupted)
        << core::TechniqueKindName(kind) << " @ " << GetParam();
  }
}

// ---- verifier: random instruction soup never crashes, always classified ----

TEST(VerifierFuzzTest, RandomModulesAreHandledGracefully) {
  Rng rng(0xF0221);
  for (int trial = 0; trial < 200; ++trial) {
    ir::Module m;
    ir::Function f;
    f.name = "fuzz";
    ir::BasicBlock block;
    const int len = 1 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < len; ++i) {
      ir::Instr instr;
      instr.op = static_cast<ir::Opcode>(rng.Below(static_cast<uint64_t>(ir::Opcode::kTrapIf) + 1));
      instr.dst = static_cast<Gpr>(rng.Below(16));
      instr.src = static_cast<Gpr>(rng.Below(16));
      instr.imm = rng.Next() & 0xffff;
      instr.target = static_cast<int32_t>(rng.Below(4));
      block.instrs.push_back(instr);
    }
    f.blocks.push_back(block);
    m.functions.push_back(f);
    // Must not crash; just classifies the module.
    (void)ir::Verify(m);
  }
}

// ---- executor under verified random programs: bounded and fault-clean ----

TEST(ExecutorFuzzTest, VerifiedRandomStraightLineProgramsTerminate) {
  Rng rng(0xE8EC);
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  ASSERT_TRUE(process.MapRange(sim::kWorkingSetBase, 2, machine::PageFlags::Data()).ok());
  for (int trial = 0; trial < 100; ++trial) {
    ir::Module m;
    ir::Builder b(&m);
    b.CreateFunction("main");
    b.MovImm(Gpr::kR9, sim::kWorkingSetBase);  // keep the pointer valid
    const int len = static_cast<int>(rng.Below(24));
    for (int i = 0; i < len; ++i) {
      switch (rng.Below(6)) {
        case 0:
          b.AddImm(Gpr::kRbx, static_cast<int64_t>(rng.Below(100)));
          break;
        case 1:
          b.AluRR(Gpr::kRbx, Gpr::kRsi, static_cast<int>(rng.Below(4)));
          break;
        case 2:
          b.Load(Gpr::kRbx, Gpr::kR9);
          break;
        case 3:
          b.Store(Gpr::kR9, Gpr::kRbx);
          break;
        case 4:
          b.VecOp(static_cast<int>(rng.Below(4)));
          break;
        case 5:
          b.Lea(Gpr::kRsi, Gpr::kR9, static_cast<int64_t>(rng.Below(64)));
          break;
      }
    }
    b.Halt();
    ASSERT_TRUE(ir::Verify(m).ok());
    sim::Executor executor(&process, &m);
    auto result = executor.Run(sim::RunConfig{.max_instructions = 1000});
    EXPECT_TRUE(result.halted);
    EXPECT_FALSE(result.fault.has_value());
    EXPECT_GT(result.cycles, 0.0);
  }
}

}  // namespace
}  // namespace memsentry

// Per-technique semantics: Prepare() configures the region correctly and the
// attacker's arbitrary read/write primitive behaves per paper Section 3.
#include <gtest/gtest.h>

#include "src/core/memsentry.h"
#include "src/mpk/mpk.h"

namespace memsentry::core {
namespace {

constexpr uint64_t kSecret = 0x5ec4e75ec4e7ULL;

struct Scenario {
  sim::Machine machine;
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<MemSentry> memsentry;
  VirtAddr base = 0;

  explicit Scenario(TechniqueKind kind, uint64_t region_bytes = 4096) {
    process = std::make_unique<sim::Process>(&machine);
    if (kind == TechniqueKind::kVmfunc) {
      EXPECT_TRUE(process->EnableDune().ok());
    }
    EXPECT_TRUE(process->SetupStack().ok());
    MemSentryConfig config;
    config.technique = kind;
    memsentry = std::make_unique<MemSentry>(process.get(), config);
    auto region = memsentry->allocator().Alloc("secret", region_bytes);
    EXPECT_TRUE(region.ok());
    base = region.value()->base;
    EXPECT_TRUE(process->Poke64(base, kSecret).ok());
    EXPECT_TRUE(memsentry->PrepareRuntime().ok());
  }

  machine::FaultOr<uint64_t> Read(VirtAddr va) {
    return memsentry->technique().AttackerRead(*process, va);
  }
  machine::FaultOr<bool> Write(VirtAddr va, uint64_t v) {
    return memsentry->technique().AttackerWrite(*process, va, v);
  }
};

TEST(TechniqueFactoryTest, CreatesAllKinds) {
  for (int k = 0; k < kNumTechniques; ++k) {
    auto technique = CreateTechnique(static_cast<TechniqueKind>(k));
    ASSERT_NE(technique, nullptr);
    EXPECT_EQ(technique->kind(), static_cast<TechniqueKind>(k));
    EXPECT_STRNE(TechniqueKindName(technique->kind()), "?");
  }
}

TEST(TechniqueLimitsTest, MatchPaperTable3) {
  EXPECT_EQ(CreateTechnique(TechniqueKind::kSfi)->limits().max_domains, 48);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kMpx)->limits().max_domains, 4);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kMpk)->limits().max_domains, 16);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kVmfunc)->limits().max_domains, 512);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kCrypt)->limits().max_domains, 0);  // unbounded
  EXPECT_EQ(CreateTechnique(TechniqueKind::kCrypt)->limits().granularity, 16u);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kMpk)->limits().granularity, kPageSize);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kVmfunc)->limits().granularity, kPageSize);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kSfi)->limits().granularity, 1u);
}

TEST(TechniqueCategoryTest, MatchesPaperSections) {
  EXPECT_EQ(CreateTechnique(TechniqueKind::kSfi)->category(), Category::kAddressBased);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kMpx)->category(), Category::kAddressBased);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kMpk)->category(), Category::kDomainBased);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kVmfunc)->category(), Category::kDomainBased);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kCrypt)->category(), Category::kDomainBased);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kSgx)->category(), Category::kDomainBased);
  EXPECT_EQ(CreateTechnique(TechniqueKind::kInfoHide)->category(), Category::kNone);
}

TEST(SfiTechniqueTest, AttackerReadAliasesBelowSplit) {
  Scenario s(TechniqueKind::kSfi);
  EXPECT_GE(s.base, kPartitionSplit);  // placed in the sensitive partition
  auto read = s.Read(s.base);
  // The masked address is unmapped -> #PF at the *aliased* address, or a
  // successful read of unrelated data. Never the secret.
  if (read.ok()) {
    EXPECT_NE(read.value(), kSecret);
  } else {
    EXPECT_EQ(read.fault().address, s.base & kSfiMask);
  }
}

TEST(SfiTechniqueTest, AttackerWriteCannotTouchRegion) {
  Scenario s(TechniqueKind::kSfi);
  (void)s.Write(s.base, 0xbad);
  EXPECT_EQ(s.process->Peek64(s.base).value(), kSecret);
}

TEST(SfiTechniqueTest, LegitSafeAccessStillWorks) {
  // Exempt (annotated) code accesses the region without masking.
  Scenario s(TechniqueKind::kSfi);
  Cycles cycles = 0;
  auto v = s.process->mmu().Read64(s.base, s.process->regs().pkru, &cycles);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), kSecret);
}

TEST(MpxTechniqueTest, PreparesBnd0AndDetects) {
  Scenario s(TechniqueKind::kMpx);
  EXPECT_EQ(s.process->regs().bnd[0].upper, kPartitionSplit - 1);
  EXPECT_TRUE(s.process->regs().bnd_preserve);
  auto read = s.Read(s.base);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.fault().type, machine::FaultType::kBoundRange);  // detected, not just prevented
  auto write = s.Write(s.base, 0xbad);
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(s.process->Peek64(s.base).value(), kSecret);
}

TEST(MpkTechniqueTest, TagsPagesAndClosesDomain) {
  Scenario s(TechniqueKind::kMpk);
  auto& region = s.process->safe_regions()[0];
  EXPECT_NE(region.pkey, 0);
  auto walk = s.process->page_table().Walk(s.base);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(machine::PageTable::PtePkey(walk.value().pte), region.pkey);

  auto read = s.Read(s.base);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.fault().type, machine::FaultType::kPkeyAccessDisabled);

  // Opening the domain (as the instrumentation would) permits access.
  s.process->regs().pkru.value = mpk::kOpenPkru;
  auto open_read = s.Read(s.base);
  ASSERT_TRUE(open_read.ok());
  EXPECT_EQ(open_read.value(), kSecret);
}

TEST(VmfuncTechniqueTest, SecretOnlyInSecondaryEpt) {
  Scenario s(TechniqueKind::kVmfunc);
  auto& region = s.process->safe_regions()[0];
  EXPECT_EQ(region.ept_index, 1);

  auto read = s.Read(s.base);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.fault().type, machine::FaultType::kEptViolation);

  // Switching to the sensitive EPT (vmfunc) exposes the region.
  ASSERT_TRUE(s.process->dune()->vmx().VmFunc(0, 1).ok());
  auto open_read = s.Read(s.base);
  ASSERT_TRUE(open_read.ok());
  EXPECT_EQ(open_read.value(), kSecret);
  // And back.
  ASSERT_TRUE(s.process->dune()->vmx().VmFunc(0, 0).ok());
  EXPECT_FALSE(s.Read(s.base).ok());
}

TEST(VmfuncTechniqueTest, RequiresDune) {
  sim::Machine machine;
  sim::Process process(&machine);  // no Dune
  MemSentryConfig config;
  config.technique = TechniqueKind::kVmfunc;
  MemSentry memsentry(&process, config);
  ASSERT_TRUE(memsentry.allocator().Alloc("r", 4096).ok());
  EXPECT_FALSE(memsentry.PrepareRuntime().ok());
}

TEST(CryptTechniqueTest, RegionEncryptedAtRest) {
  Scenario s(TechniqueKind::kCrypt);
  auto read = s.Read(s.base);
  ASSERT_TRUE(read.ok());                // readable...
  EXPECT_NE(read.value(), kSecret);      // ...but ciphertext
  EXPECT_TRUE(s.process->ymm_reserved());
  auto& region = s.process->safe_regions()[0];
  EXPECT_TRUE(region.crypt);
  EXPECT_TRUE(region.encrypted_now);

  // The legitimate open (decrypt) recovers the plaintext.
  std::vector<uint8_t> bytes(region.size);
  ASSERT_TRUE(s.process->PeekBytes(region.base, bytes.data(), region.size).ok());
  aes::CryptRegion(bytes, region.enc_keys, region.nonce);
  uint64_t plain = 0;
  memcpy(&plain, bytes.data(), 8);
  EXPECT_EQ(plain, kSecret);
}

TEST(CryptTechniqueTest, SizeRoundsToAesChunks) {
  Scenario s(TechniqueKind::kCrypt, /*region_bytes=*/20);
  EXPECT_EQ(s.process->safe_regions()[0].size, 32u);  // 2 chunks
}

TEST(SgxTechniqueTest, EnclaveBlocksOutsideAccess) {
  Scenario s(TechniqueKind::kSgx);
  ASSERT_NE(s.process->enclave(), nullptr);
  EXPECT_TRUE(s.process->enclave()->finalized());
  auto read = s.Read(s.base);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.fault().type, machine::FaultType::kEnclaveAccess);
  // Inside the enclave (after ECALL) access works.
  ASSERT_TRUE(s.process->enclave()->Enter(0).ok());
  auto inside = s.Read(s.base);
  ASSERT_TRUE(inside.ok());
  EXPECT_EQ(inside.value(), kSecret);
}

TEST(MprotectTechniqueTest, RegionClosedByDefault) {
  Scenario s(TechniqueKind::kMprotect);
  EXPECT_TRUE(s.process->safe_regions()[0].mprotected);
  auto read = s.Read(s.base);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.fault().type, machine::FaultType::kUserSupervisor);
}

TEST(InfoHideTechniqueTest, KnownAddressMeansGameOver) {
  Scenario s(TechniqueKind::kInfoHide);
  // Placed at a randomized address...
  EXPECT_GE(s.base, sim::kStackTop);
  // ...but nothing stops an attacker who learns it.
  auto read = s.Read(s.base);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), kSecret);
  ASSERT_TRUE(s.Write(s.base, 0xbad).ok());
  EXPECT_EQ(s.process->Peek64(s.base).value(), 0xbadu);
}

TEST(InfoHideTechniqueTest, PlacementVariesWithSeed) {
  std::vector<VirtAddr> bases;
  for (uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    sim::Machine machine;
    sim::Process process(&machine);
    MemSentryConfig config;
    config.technique = TechniqueKind::kInfoHide;
    config.placement_seed = seed;
    MemSentry ms(&process, config);
    auto region = ms.allocator().Alloc("r", 4096);
    ASSERT_TRUE(region.ok());
    bases.push_back(region.value()->base);
  }
  EXPECT_NE(bases[0], bases[1]);
  EXPECT_NE(bases[1], bases[2]);
  EXPECT_NE(bases[2], bases[3]);
}

TEST(SafeRegionAllocatorTest, DeterministicPlacementAboveSplit) {
  sim::Machine machine;
  sim::Process process(&machine);
  SafeRegionAllocator allocator(&process, TechniqueKind::kMpk);
  auto a = allocator.Alloc("a", 100);
  auto b = allocator.Alloc("b", 100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(a.value()->base, kPartitionSplit);
  EXPECT_GT(b.value()->base, a.value()->base);
  EXPECT_EQ(a.value()->size, kPageSize);  // page granularity for MPK
}

TEST(SafeRegionAllocatorTest, CApiShape) {
  sim::Machine machine;
  sim::Process process(&machine);
  SafeRegionAllocator allocator(&process, TechniqueKind::kSfi);
  auto va = allocator.saferegion_alloc(64);
  ASSERT_TRUE(va.ok());
  EXPECT_TRUE(process.InSafeRegion(va.value()));
}

TEST(SafeRegionAllocatorTest, RejectsZeroSize) {
  sim::Machine machine;
  sim::Process process(&machine);
  SafeRegionAllocator allocator(&process, TechniqueKind::kSfi);
  EXPECT_FALSE(allocator.Alloc("zero", 0).ok());
}

}  // namespace
}  // namespace memsentry::core

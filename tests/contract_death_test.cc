// Death tests pinning the StatusOr/FaultOr misuse contract: extracting a
// value from an error (or a fault from a success) aborts with a diagnostic
// in every build type — MEMSENTRY_CONTRACT_CHECK is a hard fprintf+abort,
// not an assert() that NDEBUG would erase. Silent garbage from a mis-unwrapped
// result is exactly the failure mode the fault-injection campaigns exist to
// rule out, so the abort behavior itself is under test.
#include <gtest/gtest.h>

#include "src/base/status.h"
#include "src/machine/fault.h"

namespace memsentry {
namespace {

machine::Fault TestFault() {
  return machine::Fault{machine::FaultType::kBoundRange, 0x1000, machine::AccessType::kRead};
}

TEST(ContractDeathTest, StatusOrValueOnErrorAborts) {
  StatusOr<int> error(InvalidArgument("no value here"));
  EXPECT_DEATH({ (void)error.value(); }, "contract violation");
}

TEST(ContractDeathTest, MovedStatusOrValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        StatusOr<int> error(NotFound("gone"));
        (void)std::move(error).value();
      },
      "contract violation");
}

TEST(ContractDeathTest, StatusOrFromOkStatusAborts) {
  // An OK status carries no value: constructing a StatusOr from it would
  // manufacture an "error" that is not one.
  EXPECT_DEATH({ StatusOr<int> bogus((OkStatus())); }, "contract violation");
}

TEST(ContractDeathTest, FaultOrValueOnFaultAborts) {
  machine::FaultOr<uint64_t> faulted(TestFault());
  EXPECT_DEATH({ (void)faulted.value(); }, "contract violation");
}

TEST(ContractDeathTest, FaultOrFaultOnValueAborts) {
  machine::FaultOr<uint64_t> fine(uint64_t{42});
  EXPECT_DEATH({ (void)fine.fault(); }, "contract violation");
}

TEST(ContractDeathTest, CorrectUseDoesNotDie) {
  StatusOr<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  machine::FaultOr<uint64_t> fine(uint64_t{42});
  EXPECT_TRUE(fine.ok());
  EXPECT_EQ(fine.value(), 42u);
  machine::FaultOr<uint64_t> faulted(TestFault());
  EXPECT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.fault().type, machine::FaultType::kBoundRange);
}

}  // namespace
}  // namespace memsentry

// Multi-domain isolation (paper Section 3.1: the two-domain model "can be
// extended into multiple and/or disjoint domains"): several safe regions
// with per-region keys / EPTs / AES keys, isolated from each other and not
// just from the program. Also exercises the Table 3 domain limits and the
// BNDPRESERVE correctness property end-to-end.
#include <gtest/gtest.h>

#include <set>

#include "src/core/memsentry.h"
#include "src/ir/builder.h"
#include "src/mpk/mpk.h"
#include "src/mpx/mpx.h"
#include "src/sim/executor.h"

namespace memsentry::core {
namespace {

using machine::Gpr;

TEST(MultiDomainMpkTest, FifteenRegionsGetDistinctKeys) {
  sim::Machine machine;
  sim::Process process(&machine);
  MemSentryConfig config;
  config.technique = TechniqueKind::kMpk;
  MemSentry ms(&process, config);
  std::vector<VirtAddr> bases;
  for (int i = 0; i < 15; ++i) {
    auto region = ms.allocator().Alloc("region" + std::to_string(i), 4096);
    ASSERT_TRUE(region.ok());
    bases.push_back(region.value()->base);
  }
  ASSERT_TRUE(ms.PrepareRuntime().ok());
  std::set<uint8_t> keys;
  for (const auto& region : process.safe_regions()) {
    EXPECT_NE(region.pkey, 0);
    keys.insert(region.pkey);
  }
  EXPECT_EQ(keys.size(), 15u);  // all distinct (15 of the 16 MPK keys)
}

TEST(MultiDomainMpkTest, SixteenthRegionExhaustsKeys) {
  sim::Machine machine;
  sim::Process process(&machine);
  MemSentryConfig config;
  config.technique = TechniqueKind::kMpk;
  MemSentry ms(&process, config);
  for (int i = 0; i < 16; ++i) {  // key 0 is the default domain: only 15 fit
    ASSERT_TRUE(ms.allocator().Alloc("r" + std::to_string(i), 4096).ok());
  }
  EXPECT_FALSE(ms.PrepareRuntime().ok());  // Table 3: max 16 domains
}

TEST(MultiDomainMpkTest, OpeningOneKeyLeavesOthersClosed) {
  sim::Machine machine;
  sim::Process process(&machine);
  MemSentryConfig config;
  config.technique = TechniqueKind::kMpk;
  MemSentry ms(&process, config);
  auto a = ms.allocator().Alloc("a", 4096);
  auto b = ms.allocator().Alloc("b", 4096);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (void)process.Poke64(a.value()->base, 0xAAAA);
  (void)process.Poke64(b.value()->base, 0xBBBB);
  ASSERT_TRUE(ms.PrepareRuntime().ok());

  // Selectively open only region a's key (disjoint domains).
  machine::Pkru pkru{};
  pkru.SetAccessDisable(process.safe_regions()[1].pkey, true);
  pkru.SetWriteDisable(process.safe_regions()[1].pkey, true);
  process.regs().pkru = pkru;

  Cycles cycles = 0;
  auto read_a = process.mmu().Read64(a.value()->base, process.regs().pkru, &cycles);
  ASSERT_TRUE(read_a.ok());
  EXPECT_EQ(read_a.value(), 0xAAAAu);
  auto read_b = process.mmu().Read64(b.value()->base, process.regs().pkru, &cycles);
  ASSERT_FALSE(read_b.ok());
  EXPECT_EQ(read_b.fault().type, machine::FaultType::kPkeyAccessDisabled);
}

TEST(MultiDomainVmfuncTest, RegionsShareTheSensitiveEptButNotEptZero) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.EnableDune().ok());
  MemSentryConfig config;
  config.technique = TechniqueKind::kVmfunc;
  MemSentry ms(&process, config);
  auto a = ms.allocator().Alloc("a", 4096);
  auto b = ms.allocator().Alloc("b", 4096);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(ms.PrepareRuntime().ok());
  // Closed (EPT 0): both unreachable.
  for (VirtAddr base : {a.value()->base, b.value()->base}) {
    auto read = ms.technique().AttackerRead(process, base);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.fault().type, machine::FaultType::kEptViolation);
  }
  // Disjoint EPT domains beyond one secret EPT: build a third EPT holding
  // only region b, demonstrating the 512-entry EPTP headroom.
  auto third = process.dune()->CreateEpt();
  ASSERT_TRUE(third.ok());
  auto walk_a = process.page_table().Walk(a.value()->base);
  ASSERT_TRUE(walk_a.ok());
  // Region a's frame is private to EPT 1, so the new EPT must not see it.
  ASSERT_TRUE(process.dune()->vmx().VmFunc(0, static_cast<uint64_t>(third.value())).ok());
  auto read_a = ms.technique().AttackerRead(process, a.value()->base);
  EXPECT_FALSE(read_a.ok());
  ASSERT_TRUE(process.dune()->vmx().VmFunc(0, 0).ok());
}

TEST(MultiDomainCryptTest, PerRegionKeysAndNonces) {
  sim::Machine machine;
  sim::Process process(&machine);
  MemSentryConfig config;
  config.technique = TechniqueKind::kCrypt;
  MemSentry ms(&process, config);
  auto a = ms.allocator().Alloc("a", 16);
  auto b = ms.allocator().Alloc("b", 16);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Identical plaintext...
  (void)process.Poke64(a.value()->base, 0x11112222);
  (void)process.Poke64(b.value()->base, 0x11112222);
  ASSERT_TRUE(ms.PrepareRuntime().ok());
  // ...must yield different ciphertexts (independent keys/nonces), or one
  // leaked key would unlock every domain.
  EXPECT_NE(process.Peek64(a.value()->base).value(), process.Peek64(b.value()->base).value());
  EXPECT_NE(process.safe_regions()[0].nonce, process.safe_regions()[1].nonce);
  EXPECT_NE(process.safe_regions()[0].enc_keys[0], process.safe_regions()[1].enc_keys[0]);
}

TEST(BndPreserveTest, ResetChecksPassVacuouslyUntilReload) {
  // End-to-end demonstration that BNDPRESERVE is a *correctness* flag: with
  // it cleared and no bound-table entry, a branch strips the protection.
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  process.regs().bnd[0] = mpx::MakeBounds(0, kPartitionSplit);
  process.regs().bnd_preserve = false;
  // No SetBndReload: nothing to reload from.
  ir::Module m;
  ir::Builder b(&m);
  b.CreateFunction("main");
  const int next = b.NewBlock();
  b.Jmp(next);  // legacy branch: resets bnd0 to INIT
  b.SetInsertPoint(0, next);
  b.MovImm(Gpr::kR9, kPartitionSplit + 0x1000);
  b.Emit(ir::Instr{.op = ir::Opcode::kBndcu, .src = Gpr::kR9, .imm = 0});
  b.Halt();
  sim::Executor executor(&process, &m);
  auto result = executor.Run();
  // The out-of-partition pointer sails through the vacuous check.
  EXPECT_TRUE(result.halted);
  EXPECT_FALSE(result.fault.has_value());
}

TEST(BndPreserveTest, ReloadRestoresProtectionAndCosts) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  process.regs().bnd[0] = mpx::MakeBounds(0, kPartitionSplit);
  process.regs().bnd_preserve = false;
  process.SetBndReload(0, mpx::MakeBounds(0, kPartitionSplit));
  ir::Module m;
  ir::Builder b(&m);
  b.CreateFunction("main");
  const int next = b.NewBlock();
  b.Jmp(next);
  b.SetInsertPoint(0, next);
  b.MovImm(Gpr::kR9, kPartitionSplit + 0x1000);
  b.Emit(ir::Instr{.op = ir::Opcode::kBndcu, .src = Gpr::kR9, .imm = 0});
  b.Halt();
  sim::Executor executor(&process, &m);
  auto result = executor.Run();
  ASSERT_TRUE(result.fault.has_value());  // reload happened, check caught it
  EXPECT_EQ(result.fault->type, machine::FaultType::kBoundRange);
}

TEST(MultiDomainSfiTest, PartitionSplitIsSharedNotPerRegion) {
  // Address-based partitioning has ONE boundary: every safe region lands in
  // the same sensitive partition; SFI cannot give regions mutual isolation
  // (Table 3's "depends on least significant bit of mask" caveat).
  sim::Machine machine;
  sim::Process process(&machine);
  MemSentryConfig config;
  config.technique = TechniqueKind::kSfi;
  MemSentry ms(&process, config);
  auto a = ms.allocator().Alloc("a", 64);
  auto b = ms.allocator().Alloc("b", 64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(ms.PrepareRuntime().ok());
  EXPECT_GE(a.value()->base, kPartitionSplit);
  EXPECT_GE(b.value()->base, kPartitionSplit);
  // Exempt code can reach both regions: no intra-partition separation.
  Cycles cycles = 0;
  EXPECT_TRUE(process.mmu().Read64(a.value()->base, process.regs().pkru, &cycles).ok());
  EXPECT_TRUE(process.mmu().Read64(b.value()->base, process.regs().pkru, &cycles).ok());
}

}  // namespace
}  // namespace memsentry::core

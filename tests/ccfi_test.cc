#include <gtest/gtest.h>

#include "src/defenses/ccfi.h"

namespace memsentry::defenses {
namespace {

TEST(CcfiTest, SealUnsealRoundTrip) {
  CcfiSealer sealer;
  const uint64_t ptr = 0x401234;
  const VirtAddr slot = 0x7fff0008;
  auto unsealed = sealer.Unseal(sealer.Seal(ptr, slot), slot);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(unsealed.value(), ptr);
}

TEST(CcfiTest, SealedValueIsNotThePointer) {
  CcfiSealer sealer;
  const SealedPointer sealed = sealer.Seal(0x401234, 0x1000);
  uint64_t head = 0;
  memcpy(&head, sealed.bytes.data(), 8);
  EXPECT_NE(head, 0x401234u);
}

TEST(CcfiTest, ReplayIntoDifferentSlotDetected) {
  // The classic attack CCFI's location binding stops: copy a valid sealed
  // pointer from one slot over another.
  CcfiSealer sealer;
  const SealedPointer sealed = sealer.Seal(0x401234, /*slot=*/0x1000);
  auto replayed = sealer.Unseal(sealed, /*slot=*/0x2000);
  EXPECT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kPermissionDenied);
}

TEST(CcfiTest, BitFlipDetected) {
  CcfiSealer sealer;
  SealedPointer sealed = sealer.Seal(0x401234, 0x1000);
  for (int byte = 0; byte < 16; ++byte) {
    SealedPointer tampered = sealed;
    tampered.bytes[static_cast<size_t>(byte)] ^= 0x40;
    auto unsealed = sealer.Unseal(tampered, 0x1000);
    // AES diffusion: any flip scrambles the location tag with overwhelming
    // probability; a silent mis-unseal would need a 2^-64 collision.
    EXPECT_FALSE(unsealed.ok()) << "byte " << byte;
  }
}

TEST(CcfiTest, ForgeryWithoutKeyDetected) {
  CcfiSealer sealer;
  SealedPointer forged;
  for (int i = 0; i < 16; ++i) {
    forged.bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(i * 17 + 3);
  }
  EXPECT_FALSE(sealer.Unseal(forged, 0x1000).ok());
}

TEST(CcfiTest, DistinctKeySeedsProduceIncompatibleSeals) {
  CcfiSealer a(/*key_seed=*/1);
  CcfiSealer b(/*key_seed=*/2);
  const SealedPointer sealed = a.Seal(0x401234, 0x1000);
  EXPECT_FALSE(b.Unseal(sealed, 0x1000).ok());
  EXPECT_NE(sealed, b.Seal(0x401234, 0x1000));
}

TEST(CcfiTest, SameInputsSealDeterministically) {
  CcfiSealer sealer(7);
  EXPECT_EQ(sealer.Seal(0x1111, 0x2000), sealer.Seal(0x1111, 0x2000));
  EXPECT_NE(sealer.Seal(0x1111, 0x2000), sealer.Seal(0x1111, 0x2008));
  EXPECT_NE(sealer.Seal(0x1111, 0x2000), sealer.Seal(0x2222, 0x2000));
}

}  // namespace
}  // namespace memsentry::defenses

// Differential oracle for the simulator fast paths (pre-decoded µop streams
// + MMU translation grant cache): randomized workloads across every
// technique, instruction-limit cutoffs landing mid-fused-run, and
// fault-injection campaigns must produce bit-identical RunResults and
// machine stats with the fast paths on, off, and in lockstep-check mode.
// This is the end-to-end half of the oracle; kCheck additionally re-derives
// every µop and MMU grant inline and aborts the process on divergence.
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/fastpath.h"
#include "src/core/memsentry.h"
#include "src/defenses/shadow_stack.h"
#include "src/sim/executor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/snapshot.h"
#include "src/workloads/spec_profiles.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

using base::FastPathMode;
using core::TechniqueKind;
using sim::FaultSite;
using workloads::SpecProfile;

// The mode is process-wide; every test restores it so ordering never leaks.
class FastPathModeGuard {
 public:
  explicit FastPathModeGuard(FastPathMode mode) : saved_(base::GetFastPathMode()) {
    base::SetFastPathMode(mode);
  }
  ~FastPathModeGuard() { base::SetFastPathMode(saved_); }

 private:
  FastPathMode saved_;
};

constexpr TechniqueKind kAllTechniques[] = {
    TechniqueKind::kSfi,   TechniqueKind::kMpx,      TechniqueKind::kMpk,
    TechniqueKind::kVmfunc, TechniqueKind::kCrypt,   TechniqueKind::kSgx,
    TechniqueKind::kMprotect, TechniqueKind::kInfoHide,
};

// Domain-based techniques only instrument annotated events, so give them a
// defense pass that produces some (as the eval pipelines do).
bool NeedsDomainDefense(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kMpk:
    case TechniqueKind::kVmfunc:
    case TechniqueKind::kCrypt:
    case TechniqueKind::kSgx:
    case TechniqueKind::kMprotect:
      return true;
    default:
      return false;
  }
}

struct Snapshot {
  sim::RunResult result;
  machine::TlbStats tlb;
  machine::CacheStats cache;
  machine::MmuStats mmu;
  bool injected = false;
};

// One fully built pipeline under the current fast-path mode: fresh machine,
// workload prep, synthesized program, defense pass (domain techniques),
// MemSentry protection, optional fault injection. Everything is derived from
// `seed`, so two calls with equal arguments build bit-identical initial
// states — which is exactly what the snapshot restore protocol requires of
// the process it loads into.
struct BuiltPipeline {
  sim::Machine machine;
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<core::MemSentry> ms;
  ir::Module module;
  bool injected = false;
};

std::unique_ptr<BuiltPipeline> BuildPipeline(TechniqueKind kind, const SpecProfile& profile,
                                             uint64_t seed, std::optional<FaultSite> site) {
  auto p = std::make_unique<BuiltPipeline>();
  p->process = std::make_unique<sim::Process>(&p->machine);
  if (kind == TechniqueKind::kVmfunc) {
    (void)p->process->EnableDune();
  }
  EXPECT_TRUE(workloads::PrepareWorkloadProcess(*p->process, profile).ok());
  core::MemSentryConfig config;
  config.technique = kind;
  config.options.mode = core::ProtectMode::kReadWrite;
  p->ms = std::make_unique<core::MemSentry>(p->process.get(), config);
  const uint64_t region_bytes = kind == TechniqueKind::kCrypt ? 16 : 4096;
  auto region = p->ms->allocator().Alloc("secret", region_bytes);
  EXPECT_TRUE(region.ok());
  const VirtAddr base = region.ok() ? region.value()->base : 0;
  workloads::SynthOptions synth;
  synth.target_instructions = 120'000;
  synth.seed = seed;
  p->module = workloads::SynthesizeSpecProgram(profile, synth);
  if (NeedsDomainDefense(kind)) {
    defenses::ShadowStackPass pass(base);
    EXPECT_TRUE(pass.Run(p->module).ok());
  }
  EXPECT_TRUE(p->ms->Protect(p->module).ok());
  if (site.has_value()) {
    sim::FaultInjector injector(p->process.get(), seed);
    p->injected = injector.Inject(*site).ok();
  }
  return p;
}

void ReadStats(const BuiltPipeline& p, Snapshot& snap) {
  snap.tlb = p.process->mmu().tlb().stats();
  snap.cache = p.process->mmu().dcache().stats();
  snap.mmu = p.process->mmu().stats();
}

Snapshot RunPipeline(TechniqueKind kind, const SpecProfile& profile, uint64_t seed,
                     uint64_t max_instructions, std::optional<FaultSite> site) {
  auto p = BuildPipeline(kind, profile, seed, site);
  Snapshot snap;
  snap.injected = p->injected;
  sim::Executor executor(p->process.get(), &p->module);
  sim::RunConfig rc;
  rc.max_instructions = max_instructions;
  rc.record_safe_accesses = true;
  snap.result = executor.Run(rc);
  ReadStats(*p, snap);
  return snap;
}

// The same execution interrupted at `midpoint` instructions: the whole
// simulation is serialized, restored into a freshly built twin pipeline (the
// twin does NOT re-inject — the injected state travels inside the snapshot),
// and resumed there to the full budget. The tentpole guarantee under test:
// run(N+M) is bit-identical to run(N); save; load; run(M).
Snapshot RunPipelineWithRoundTrip(TechniqueKind kind, const SpecProfile& profile, uint64_t seed,
                                  uint64_t max_instructions, uint64_t midpoint,
                                  std::optional<FaultSite> site, FastPathMode save_mode,
                                  FastPathMode resume_mode) {
  Snapshot snap;
  std::string blob;
  {
    FastPathModeGuard guard(save_mode);
    auto first = BuildPipeline(kind, profile, seed, site);
    snap.injected = first->injected;
    sim::Executor executor(first->process.get(), &first->module);
    sim::RunConfig rc;
    rc.max_instructions = midpoint;
    rc.record_safe_accesses = true;
    const sim::RunResult partial = executor.Run(rc);
    if (!partial.hit_instruction_limit || !partial.cursor.valid) {
      // The workload finished (or faulted) before the midpoint; nothing to
      // round-trip, the straight result is the answer.
      snap.result = partial;
      ReadStats(*first, snap);
      return snap;
    }
    blob = sim::SaveSnapshot(*first->process, &partial, nullptr, nullptr, "differential");
    // `first` dies here: the restored twin must not alias anything from the
    // donor pipeline.
  }

  FastPathModeGuard guard(resume_mode);
  auto second = BuildPipeline(kind, profile, seed, std::nullopt);
  sim::RunResult partial;
  const Status loaded = sim::LoadSnapshot(blob, second->process.get(), &partial, nullptr, nullptr);
  EXPECT_TRUE(loaded.ok()) << loaded.ToString();
  sim::Executor executor(second->process.get(), &second->module);
  sim::RunConfig rc;
  rc.max_instructions = max_instructions;
  rc.record_safe_accesses = true;
  snap.result = executor.Resume(rc, partial);
  ReadStats(*second, snap);
  return snap;
}

// Bitwise equality of everything the simulator models. Cycle totals are
// doubles compared with ==: the fast paths promise the identical sequence
// of additions, not just a close sum. Grant-cache counters are deliberately
// absent — they are fast-path observability, not modeled state.
void ExpectBitIdentical(const Snapshot& ref, const Snapshot& fast, const std::string& label) {
  SCOPED_TRACE(label);
  const sim::RunResult& a = ref.result;
  const sim::RunResult& b = fast.result;
  EXPECT_EQ(ref.injected, fast.injected);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.halted, b.halted);
  EXPECT_EQ(a.trapped, b.trapped);
  EXPECT_EQ(a.hit_instruction_limit, b.hit_instruction_limit);
  ASSERT_EQ(a.fault.has_value(), b.fault.has_value());
  if (a.fault.has_value()) {
    EXPECT_EQ(a.fault->type, b.fault->type);
    EXPECT_EQ(a.fault->address, b.fault->address);
    EXPECT_EQ(a.fault->access, b.fault->access);
  }
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.rets, b.rets);
  EXPECT_EQ(a.indirect_calls, b.indirect_calls);
  EXPECT_EQ(a.syscalls, b.syscalls);
  EXPECT_EQ(a.domain_switches, b.domain_switches);
  EXPECT_EQ(a.instrumentation_instrs, b.instrumentation_instrs);
  EXPECT_EQ(a.instrumentation_cycles, b.instrumentation_cycles);
  EXPECT_EQ(a.SortedSafeAccessRefs(), b.SortedSafeAccessRefs());
  EXPECT_EQ(ref.tlb.hits, fast.tlb.hits);
  EXPECT_EQ(ref.tlb.misses, fast.tlb.misses);
  EXPECT_EQ(ref.tlb.flushes, fast.tlb.flushes);
  EXPECT_EQ(ref.cache.accesses, fast.cache.accesses);
  EXPECT_EQ(ref.cache.l1_hits, fast.cache.l1_hits);
  EXPECT_EQ(ref.cache.l2_hits, fast.cache.l2_hits);
  EXPECT_EQ(ref.cache.l3_hits, fast.cache.l3_hits);
  EXPECT_EQ(ref.cache.dram_accesses, fast.cache.dram_accesses);
  EXPECT_EQ(ref.mmu.accesses, fast.mmu.accesses);
  EXPECT_EQ(ref.mmu.faults, fast.mmu.faults);
  EXPECT_EQ(ref.mmu.walk_memory_touches, fast.mmu.walk_memory_touches);
}

Snapshot RunWithMode(FastPathMode mode, TechniqueKind kind, const SpecProfile& profile,
                     uint64_t seed, uint64_t max_instructions,
                     std::optional<FaultSite> site = std::nullopt) {
  FastPathModeGuard guard(mode);
  return RunPipeline(kind, profile, seed, max_instructions, site);
}

TEST(FastPathDifferential, EveryTechniqueBitIdentical) {
  const auto profiles = workloads::SpecCpu2006();
  ASSERT_GE(profiles.size(), 3u);
  for (TechniqueKind kind : kAllTechniques) {
    for (size_t p = 0; p < 2; ++p) {
      const SpecProfile& profile = profiles[p];
      const uint64_t seed = 0x1234 + p;
      const Snapshot ref = RunWithMode(FastPathMode::kOff, kind, profile, seed, 500'000'000);
      const Snapshot fast = RunWithMode(FastPathMode::kOn, kind, profile, seed, 500'000'000);
      ExpectBitIdentical(ref, fast,
                         "technique=" + std::to_string(static_cast<int>(kind)) +
                             " profile=" + profile.name);
      // The workload must actually run — an early fault on both sides would
      // make the comparison vacuous.
      EXPECT_GT(ref.result.instructions, 0u);
    }
  }
}

TEST(FastPathDifferential, RandomizedSeedsBitIdentical) {
  const auto profiles = workloads::SpecCpu2006();
  // Rotate techniques over randomized program shapes; every seed synthesizes
  // a different module (different fused-run boundaries, branch layouts).
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const TechniqueKind kind = kAllTechniques[seed % std::size(kAllTechniques)];
    const SpecProfile& profile = profiles[seed % profiles.size()];
    const Snapshot ref = RunWithMode(FastPathMode::kOff, kind, profile, seed, 500'000'000);
    const Snapshot fast = RunWithMode(FastPathMode::kOn, kind, profile, seed, 500'000'000);
    ExpectBitIdentical(ref, fast, "seed=" + std::to_string(seed));
  }
}

TEST(FastPathDifferential, InstructionLimitCutsMidFusedRun) {
  // Odd limits land the budget clamp inside fused µop runs; the fast path
  // must stop at exactly the same op (same partial cycle sum, same register
  // state feeding the final counters) as the reference interpreter.
  const SpecProfile& profile = workloads::SpecCpu2006()[0];
  for (uint64_t limit : {1ull, 7ull, 997ull, 54'321ull, 111'111ull}) {
    const Snapshot ref =
        RunWithMode(FastPathMode::kOff, TechniqueKind::kMpx, profile, 42, limit);
    const Snapshot fast =
        RunWithMode(FastPathMode::kOn, TechniqueKind::kMpx, profile, 42, limit);
    ExpectBitIdentical(ref, fast, "limit=" + std::to_string(limit));
    EXPECT_EQ(ref.result.hit_instruction_limit, limit <= ref.result.instructions);
  }
}

TEST(FastPathDifferential, FaultInjectionSitesBitIdentical) {
  // Every fault site against the techniques it can apply to: injections
  // mutate translation state (PTEs, TLB entries, PKRU, EPTs, round keys)
  // after grants may already exist, exercising the grant cache's
  // invalidation rules under adversarial state changes.
  const SpecProfile& profile = workloads::SpecCpu2006()[1];
  const TechniqueKind kinds[] = {TechniqueKind::kMpk, TechniqueKind::kMpx,
                                 TechniqueKind::kVmfunc, TechniqueKind::kCrypt};
  for (int s = 0; s < sim::kNumFaultSites; ++s) {
    const auto site = static_cast<FaultSite>(s);
    for (TechniqueKind kind : kinds) {
      const uint64_t seed = 7'000 + static_cast<uint64_t>(s);
      const Snapshot ref =
          RunWithMode(FastPathMode::kOff, kind, profile, seed, 500'000'000, site);
      const Snapshot fast =
          RunWithMode(FastPathMode::kOn, kind, profile, seed, 500'000'000, site);
      ExpectBitIdentical(ref, fast, std::string("site=") + sim::FaultSiteName(site));
    }
  }
}

TEST(FastPathDifferential, SnapshotRoundTripEveryTechnique) {
  // Save/load/resume at a midpoint must be invisible: the resumed run's
  // result, stats and safe-access profile equal an uninterrupted run's bit
  // for bit, for every technique. Midpoints vary per technique so the cut
  // lands at different µop/fused-run offsets.
  const auto profiles = workloads::SpecCpu2006();
  for (size_t t = 0; t < std::size(kAllTechniques); ++t) {
    const TechniqueKind kind = kAllTechniques[t];
    const SpecProfile& profile = profiles[t % profiles.size()];
    const uint64_t seed = 0x5eed00 + t;
    const uint64_t midpoint = 20'011 + 7'777 * t;
    const Snapshot straight = RunWithMode(FastPathMode::kOn, kind, profile, seed, 500'000'000);
    const Snapshot trip =
        RunPipelineWithRoundTrip(kind, profile, seed, 500'000'000, midpoint, std::nullopt,
                                 FastPathMode::kOn, FastPathMode::kOn);
    ExpectBitIdentical(straight, trip,
                       "roundtrip technique=" + std::to_string(static_cast<int>(kind)));
    EXPECT_GT(straight.result.instructions, midpoint);  // the cut actually happened
  }
}

TEST(FastPathDifferential, SnapshotRoundTripAcrossFastPathModes) {
  // The snapshot format is mode-portable: state saved under one fast-path
  // mode resumes under any other with a bit-identical outcome. The check
  // mode leg additionally validates every resumed µop and grant in lockstep.
  const SpecProfile& profile = workloads::SpecCpu2006()[0];
  constexpr uint64_t kSeed = 0xab1e;
  constexpr uint64_t kMidpoint = 31'337;
  const Snapshot ref = RunWithMode(FastPathMode::kOff, TechniqueKind::kMpx, profile, kSeed,
                                   500'000'000);
  const std::pair<FastPathMode, FastPathMode> legs[] = {
      {FastPathMode::kOn, FastPathMode::kOff},
      {FastPathMode::kOff, FastPathMode::kOn},
      {FastPathMode::kOn, FastPathMode::kCheck},
  };
  for (const auto& [save_mode, resume_mode] : legs) {
    const Snapshot trip =
        RunPipelineWithRoundTrip(TechniqueKind::kMpx, profile, kSeed, 500'000'000, kMidpoint,
                                 std::nullopt, save_mode, resume_mode);
    ExpectBitIdentical(ref, trip,
                       std::string("save=") + base::FastPathModeName(save_mode) +
                           " resume=" + base::FastPathModeName(resume_mode));
  }
}

TEST(FastPathDifferential, SnapshotRoundTripUnderInjectedFaults) {
  // Injected protection-state corruption (PKRU desync, clobbered round keys,
  // dropped EPT mappings) must travel inside the snapshot: the twin pipeline
  // never re-injects, yet resumes to the same outcome as the straight
  // injected run.
  const SpecProfile& profile = workloads::SpecCpu2006()[1];
  const std::pair<TechniqueKind, FaultSite> cells[] = {
      {TechniqueKind::kMpk, FaultSite::kPkruDesync},
      {TechniqueKind::kCrypt, FaultSite::kAesRoundKeyClobber},
      {TechniqueKind::kVmfunc, FaultSite::kEptMappingDrop},
      {TechniqueKind::kMpx, FaultSite::kBndRegisterClobber},
  };
  for (const auto& [kind, site] : cells) {
    const uint64_t seed = 0xfa117 + static_cast<uint64_t>(site);
    const Snapshot straight =
        RunWithMode(FastPathMode::kOn, kind, profile, seed, 500'000'000, site);
    const Snapshot trip = RunPipelineWithRoundTrip(kind, profile, seed, 500'000'000, 24'683,
                                                   site, FastPathMode::kOn, FastPathMode::kOn);
    ExpectBitIdentical(straight, trip, std::string("injected site=") + sim::FaultSiteName(site));
  }
}

TEST(FastPathDifferential, CheckModeMatchesReference) {
  // kCheck re-derives every µop and grant from the reference state inline
  // and aborts on divergence; surviving a run is itself the assertion. The
  // results must also equal the reference byte for byte.
  const auto profiles = workloads::SpecCpu2006();
  for (TechniqueKind kind :
       {TechniqueKind::kSfi, TechniqueKind::kMpk, TechniqueKind::kCrypt}) {
    const SpecProfile& profile = profiles[2];
    const Snapshot ref = RunWithMode(FastPathMode::kOff, kind, profile, 99, 500'000'000);
    const Snapshot checked = RunWithMode(FastPathMode::kCheck, kind, profile, 99, 500'000'000);
    ExpectBitIdentical(ref, checked,
                       "check technique=" + std::to_string(static_cast<int>(kind)));
  }
}

}  // namespace
}  // namespace memsentry

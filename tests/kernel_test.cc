#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/sim/executor.h"
#include "src/sim/kernel.h"

namespace memsentry::sim {
namespace {

using ir::Builder;
using ir::Module;
using machine::Gpr;

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : process_(&machine_), kernel_(&process_) {
    EXPECT_TRUE(process_.SetupStack().ok());
    kernel_.Install();
  }
  RunResult Run(const Module& m) {
    Executor executor(&process_, &m);
    return executor.Run();
  }
  Machine machine_;
  Process process_;
  Kernel kernel_;
};

TEST_F(KernelTest, NopAndWrite) {
  EXPECT_EQ(kernel_.Dispatch(0, 0, 0), 0u);
  EXPECT_EQ(kernel_.Dispatch(1, 42, 0), 8u);
  EXPECT_EQ(kernel_.write_sink(), 42u);
  EXPECT_EQ(kernel_.Dispatch(9999, 0, 0), kSysError);  // ENOSYS
}

TEST_F(KernelTest, MmapChoosesPlacementAndMapsPages) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, 3 * kPageSize);
  ASSERT_NE(base, kSysError);
  EXPECT_EQ(PageOffset(base), 0u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(process_.IsMapped(base + p * kPageSize));
  }
  // A second mapping doesn't overlap the first.
  const uint64_t second = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  EXPECT_GE(second, base + 3 * kPageSize);
}

TEST_F(KernelTest, MmapWithHint) {
  const VirtAddr hint = 0x250000000000ULL;
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), hint, kPageSize), hint);
  EXPECT_TRUE(process_.IsMapped(hint));
  // Unaligned hint or zero length fail.
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), hint + 5, kPageSize),
            kSysError);
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, 0), kSysError);
}

TEST_F(KernelTest, MunmapRemoves) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  ASSERT_NE(base, kSysError);
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base, kPageSize), 0u);
  EXPECT_FALSE(process_.IsMapped(base));
}

TEST_F(KernelTest, MprotectTogglesAccessWithTlbShootdown) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  ASSERT_NE(base, kSysError);
  Cycles cycles = 0;
  // Warm the TLB, then revoke: the shootdown must make the revocation stick.
  ASSERT_TRUE(process_.mmu().Write64(base, 7, process_.regs().pkru, &cycles).ok());
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), base, kProtNone), 0u);
  EXPECT_FALSE(process_.mmu().Read64(base, process_.regs().pkru, &cycles).ok());
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), base, kProtRw), 0u);
  auto read = process_.mmu().Read64(base, process_.regs().pkru, &cycles);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 7u);
}

TEST_F(KernelTest, BrkGrowsHeap) {
  const uint64_t initial = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kBrk), 0, 0);
  EXPECT_EQ(initial, kHeapBase);
  const uint64_t grown = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kBrk),
                                          kHeapBase + 3 * kPageSize, 0);
  EXPECT_EQ(grown, kHeapBase + 3 * kPageSize);
  EXPECT_TRUE(process_.IsMapped(kHeapBase));
  EXPECT_TRUE(process_.IsMapped(kHeapBase + 2 * kPageSize));
  // Shrinking is refused (reports the current break).
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kBrk), kHeapBase, 0), grown);
}

TEST_F(KernelTest, PkeySyscallLifecycle) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  const uint64_t key = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyAlloc), 0, 0);
  ASSERT_NE(key, kSysError);
  EXPECT_GE(key, 1u);
  // pkey_mprotect tags the page...
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyMprotect), base,
                             (uint64_t{1} << 8) | key),
            0u);
  auto walk = process_.page_table().Walk(base);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(machine::PageTable::PtePkey(walk.value().pte), key);
  // ...and PKRU now gates it.
  machine::Pkru pkru{};
  pkru.SetAccessDisable(static_cast<uint8_t>(key), true);
  Cycles cycles = 0;
  EXPECT_FALSE(process_.mmu().Read64(base, pkru, &cycles).ok());
  // Tagging with an unallocated key fails; freeing works once.
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyMprotect), base,
                             (uint64_t{1} << 8) | 9),
            kSysError);
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyFree), key, 0), 0u);
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyFree), key, 0), kSysError);
}

TEST_F(KernelTest, ProgramDrivenMmapAndUse) {
  // A program maps a page via syscall and uses the returned pointer — the
  // full loop from IR through the kernel and back.
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRdi, 0);                  // hint = 0
  b.MovImm(Gpr::kRsi, kPageSize);          // length
  b.Syscall(static_cast<uint64_t>(Sysno::kMmap));
  // rax now holds the new base; copy to r9 and store through it.
  b.Lea(Gpr::kR9, Gpr::kRax, 0);
  b.MovImm(Gpr::kRbx, 0x600d);
  b.Store(Gpr::kR9, Gpr::kRbx);
  b.Load(Gpr::kRcx, Gpr::kR9);
  b.Halt();
  auto result = Run(m);
  ASSERT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "");
  EXPECT_EQ(process_.regs()[Gpr::kRcx], 0x600du);
  EXPECT_EQ(kernel_.mmap_calls(), 1u);
}

TEST_F(KernelTest, WorksIdenticallyUnderDune) {
  // Under Dune every syscall becomes a hypercall but lands in the same
  // kernel handler (the paper's Dune syscall forwarding).
  Machine machine;
  Process process(&machine);
  ASSERT_TRUE(process.EnableDune().ok());
  ASSERT_TRUE(process.SetupStack().ok());
  Kernel kernel(&process);
  kernel.Install();
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRdi, 0);
  b.MovImm(Gpr::kRsi, kPageSize);
  b.Syscall(static_cast<uint64_t>(Sysno::kMmap));
  b.Lea(Gpr::kR9, Gpr::kRax, 0);
  b.MovImm(Gpr::kRbx, 0xd00d);
  b.Store(Gpr::kR9, Gpr::kRbx);
  b.Halt();
  Executor executor(&process, &m);
  auto result = executor.Run();
  ASSERT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "");
  EXPECT_EQ(kernel.mmap_calls(), 1u);
  EXPECT_EQ(process.dune()->hypercall_count(), 1u);  // arrived as a hypercall
  // The syscall was priced as a vmcall (613), not a syscall (108).
  EXPECT_GT(result.cycles, machine.cost.vmcall);
}

}  // namespace
}  // namespace memsentry::sim

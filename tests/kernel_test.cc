#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/sim/executor.h"
#include "src/sim/kernel.h"

namespace memsentry::sim {
namespace {

using ir::Builder;
using ir::Module;
using machine::Gpr;

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : process_(&machine_), kernel_(&process_) {
    EXPECT_TRUE(process_.SetupStack().ok());
    kernel_.Install();
  }
  RunResult Run(const Module& m) {
    Executor executor(&process_, &m);
    return executor.Run();
  }
  Machine machine_;
  Process process_;
  Kernel kernel_;
};

TEST_F(KernelTest, NopAndWrite) {
  EXPECT_EQ(kernel_.Dispatch(0, 0, 0), 0u);
  EXPECT_EQ(kernel_.Dispatch(1, 42, 0), 8u);
  EXPECT_EQ(kernel_.write_sink(), 42u);
  const uint64_t enosys = kernel_.Dispatch(9999, 0, 0);
  ASSERT_TRUE(IsSysError(enosys));
  EXPECT_EQ(SysErrnoOf(enosys), Errno::kENOSYS);
}

TEST_F(KernelTest, MmapChoosesPlacementAndMapsPages) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, 3 * kPageSize);
  ASSERT_FALSE(IsSysError(base));
  EXPECT_EQ(PageOffset(base), 0u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(process_.IsMapped(base + p * kPageSize));
  }
  // A second mapping doesn't overlap the first.
  const uint64_t second = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  EXPECT_GE(second, base + 3 * kPageSize);
}

TEST_F(KernelTest, MmapWithHint) {
  const VirtAddr hint = 0x250000000000ULL;
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), hint, kPageSize), hint);
  EXPECT_TRUE(process_.IsMapped(hint));
  // Unaligned hint or zero length fail.
  const uint64_t unaligned = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), hint + 5, kPageSize);
  ASSERT_TRUE(IsSysError(unaligned));
  EXPECT_EQ(SysErrnoOf(unaligned), Errno::kEINVAL);
  const uint64_t zero_len = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, 0);
  ASSERT_TRUE(IsSysError(zero_len));
  EXPECT_EQ(SysErrnoOf(zero_len), Errno::kEINVAL);
}

TEST_F(KernelTest, MunmapRemoves) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  ASSERT_FALSE(IsSysError(base));
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base, kPageSize), 0u);
  EXPECT_FALSE(process_.IsMapped(base));
}

TEST_F(KernelTest, MprotectTogglesAccessWithTlbShootdown) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  ASSERT_FALSE(IsSysError(base));
  Cycles cycles = 0;
  // Warm the TLB, then revoke: the shootdown must make the revocation stick.
  ASSERT_TRUE(process_.mmu().Write64(base, 7, process_.regs().pkru, &cycles).ok());
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), base, kProtNone), 0u);
  EXPECT_FALSE(process_.mmu().Read64(base, process_.regs().pkru, &cycles).ok());
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), base, kProtRw), 0u);
  auto read = process_.mmu().Read64(base, process_.regs().pkru, &cycles);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 7u);
}

TEST_F(KernelTest, BrkGrowsHeap) {
  const uint64_t initial = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kBrk), 0, 0);
  EXPECT_EQ(initial, kHeapBase);
  const uint64_t grown = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kBrk),
                                          kHeapBase + 3 * kPageSize, 0);
  EXPECT_EQ(grown, kHeapBase + 3 * kPageSize);
  EXPECT_TRUE(process_.IsMapped(kHeapBase));
  EXPECT_TRUE(process_.IsMapped(kHeapBase + 2 * kPageSize));
  // Shrinking is refused (reports the current break).
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kBrk), kHeapBase, 0), grown);
}

TEST_F(KernelTest, PkeySyscallLifecycle) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  const uint64_t key = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyAlloc), 0, 0);
  ASSERT_FALSE(IsSysError(key));
  EXPECT_GE(key, 1u);
  // pkey_mprotect tags the page...
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyMprotect), base,
                             (uint64_t{1} << 8) | key),
            0u);
  auto walk = process_.page_table().Walk(base);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(machine::PageTable::PtePkey(walk.value().pte), key);
  // ...and PKRU now gates it.
  machine::Pkru pkru{};
  pkru.SetAccessDisable(static_cast<uint8_t>(key), true);
  Cycles cycles = 0;
  EXPECT_FALSE(process_.mmu().Read64(base, pkru, &cycles).ok());
  // Tagging with an unallocated key fails; freeing works once.
  const uint64_t bad_key = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyMprotect), base,
                                            (uint64_t{1} << 8) | 9);
  ASSERT_TRUE(IsSysError(bad_key));
  EXPECT_EQ(SysErrnoOf(bad_key), Errno::kEINVAL);
  // The page still carries the key, so freeing is refused with EBUSY until
  // the tag is moved back to the default domain.
  const uint64_t busy = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyFree), key, 0);
  ASSERT_TRUE(IsSysError(busy));
  EXPECT_EQ(SysErrnoOf(busy), Errno::kEBUSY);
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyMprotect), base,
                             (uint64_t{1} << 8) | 0),
            0u);
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyFree), key, 0), 0u);
  const uint64_t refree = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyFree), key, 0);
  ASSERT_TRUE(IsSysError(refree));
  EXPECT_EQ(SysErrnoOf(refree), Errno::kEINVAL);
}

TEST_F(KernelTest, MmapHugeLengthIsEnomemNotOverflow) {
  // A length large enough to wrap PageAlignUp must be refused cleanly.
  const uint64_t huge = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, ~uint64_t{0} - 100);
  ASSERT_TRUE(IsSysError(huge));
  EXPECT_EQ(SysErrnoOf(huge), Errno::kENOMEM);
  const uint64_t whole_space =
      kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, uint64_t{1} << 60);
  ASSERT_TRUE(IsSysError(whole_space));
  EXPECT_EQ(SysErrnoOf(whole_space), Errno::kENOMEM);
}

TEST_F(KernelTest, MmapOverExistingMappingIsEexist) {
  const VirtAddr hint = 0x250000000000ULL;
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), hint, kPageSize), hint);
  const uint64_t again = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), hint, kPageSize);
  ASSERT_TRUE(IsSysError(again));
  EXPECT_EQ(SysErrnoOf(again), Errno::kEEXIST);
}

TEST_F(KernelTest, MunmapRejectsDoubleUnmapAndBadArgs) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, 2 * kPageSize);
  ASSERT_FALSE(IsSysError(base));
  // Zero length and unaligned address are EINVAL.
  const uint64_t zero = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base, 0);
  ASSERT_TRUE(IsSysError(zero));
  EXPECT_EQ(SysErrnoOf(zero), Errno::kEINVAL);
  const uint64_t unaligned = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base + 8, kPageSize);
  ASSERT_TRUE(IsSysError(unaligned));
  EXPECT_EQ(SysErrnoOf(unaligned), Errno::kEINVAL);
  // A partially-unmapped range fails whole (validate-first): nothing is
  // unmapped when any page in the range is absent.
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base + kPageSize, kPageSize),
            0u);
  const uint64_t partial = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base, 2 * kPageSize);
  ASSERT_TRUE(IsSysError(partial));
  EXPECT_EQ(SysErrnoOf(partial), Errno::kEINVAL);
  EXPECT_TRUE(process_.IsMapped(base));
  // Double-unmap of the remaining page: first succeeds, second is EINVAL.
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base, kPageSize), 0u);
  const uint64_t dbl = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base, kPageSize);
  ASSERT_TRUE(IsSysError(dbl));
  EXPECT_EQ(SysErrnoOf(dbl), Errno::kEINVAL);
}

TEST_F(KernelTest, MprotectOfUnmappedRangeIsEnomem) {
  const uint64_t rv =
      kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), 0x260000000000ULL, kProtNone);
  ASSERT_TRUE(IsSysError(rv));
  EXPECT_EQ(SysErrnoOf(rv), Errno::kENOMEM);
}

TEST_F(KernelTest, PkeyAllocExhaustionIsEnospc) {
  // Key 0 is reserved; 15 allocations drain the space, the 16th is ENOSPC.
  for (int i = 0; i < 15; ++i) {
    ASSERT_FALSE(IsSysError(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyAlloc), 0, 0)));
  }
  const uint64_t exhausted = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyAlloc), 0, 0);
  ASSERT_TRUE(IsSysError(exhausted));
  EXPECT_EQ(SysErrnoOf(exhausted), Errno::kENOSPC);
}

TEST_F(KernelTest, PkeyMprotectValidatesWholeRangeFirst) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  ASSERT_FALSE(IsSysError(base));
  const uint64_t key = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyAlloc), 0, 0);
  ASSERT_FALSE(IsSysError(key));
  // Second page of the range is unmapped: the whole call fails with ENOMEM
  // and the first page keeps its old (default) key — no half-tagged range.
  const uint64_t rv = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyMprotect), base,
                                       (uint64_t{2} << 8) | key);
  ASSERT_TRUE(IsSysError(rv));
  EXPECT_EQ(SysErrnoOf(rv), Errno::kENOMEM);
  auto walk = process_.page_table().Walk(base);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(machine::PageTable::PtePkey(walk.value().pte), 0u);
  EXPECT_EQ(kernel_.tagged_pages(static_cast<uint8_t>(key)), 0u);
}

TEST_F(KernelTest, TaggedPageAccountingFollowsMunmap) {
  const uint64_t base = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, 2 * kPageSize);
  ASSERT_FALSE(IsSysError(base));
  const uint64_t key = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyAlloc), 0, 0);
  ASSERT_FALSE(IsSysError(key));
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyMprotect), base,
                             (uint64_t{2} << 8) | key),
            0u);
  EXPECT_EQ(kernel_.tagged_pages(static_cast<uint8_t>(key)), 2u);
  // Unmapping tagged pages releases the accounting, unblocking pkey_free.
  ASSERT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMunmap), base, 2 * kPageSize), 0u);
  EXPECT_EQ(kernel_.tagged_pages(static_cast<uint8_t>(key)), 0u);
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kPkeyFree), key, 0), 0u);
}

TEST_F(KernelTest, InjectedSyscallFailuresFireDeterministically) {
  // Arm one ENOMEM on mmap: the next call fails, the one after succeeds.
  kernel_.InjectSyscallFailure(Sysno::kMmap, Errno::kENOMEM);
  const uint64_t failed = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  ASSERT_TRUE(IsSysError(failed));
  EXPECT_EQ(SysErrnoOf(failed), Errno::kENOMEM);
  EXPECT_EQ(kernel_.injected_failures(), 1u);
  const uint64_t ok = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMmap), 0, kPageSize);
  EXPECT_FALSE(IsSysError(ok));
  // Multi-count arming fails that many dispatches, and only that syscall.
  kernel_.InjectSyscallFailure(Sysno::kMprotect, Errno::kEACCES, 2);
  for (int i = 0; i < 2; ++i) {
    const uint64_t rv = kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), ok, kProtNone);
    ASSERT_TRUE(IsSysError(rv));
    EXPECT_EQ(SysErrnoOf(rv), Errno::kEACCES);
  }
  EXPECT_EQ(kernel_.Dispatch(static_cast<uint64_t>(Sysno::kMprotect), ok, kProtNone), 0u);
  EXPECT_EQ(kernel_.injected_failures(), 3u);
}

TEST_F(KernelTest, ProgramDrivenMmapAndUse) {
  // A program maps a page via syscall and uses the returned pointer — the
  // full loop from IR through the kernel and back.
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRdi, 0);                  // hint = 0
  b.MovImm(Gpr::kRsi, kPageSize);          // length
  b.Syscall(static_cast<uint64_t>(Sysno::kMmap));
  // rax now holds the new base; copy to r9 and store through it.
  b.Lea(Gpr::kR9, Gpr::kRax, 0);
  b.MovImm(Gpr::kRbx, 0x600d);
  b.Store(Gpr::kR9, Gpr::kRbx);
  b.Load(Gpr::kRcx, Gpr::kR9);
  b.Halt();
  auto result = Run(m);
  ASSERT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "");
  EXPECT_EQ(process_.regs()[Gpr::kRcx], 0x600du);
  EXPECT_EQ(kernel_.mmap_calls(), 1u);
}

TEST_F(KernelTest, WorksIdenticallyUnderDune) {
  // Under Dune every syscall becomes a hypercall but lands in the same
  // kernel handler (the paper's Dune syscall forwarding).
  Machine machine;
  Process process(&machine);
  ASSERT_TRUE(process.EnableDune().ok());
  ASSERT_TRUE(process.SetupStack().ok());
  Kernel kernel(&process);
  kernel.Install();
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRdi, 0);
  b.MovImm(Gpr::kRsi, kPageSize);
  b.Syscall(static_cast<uint64_t>(Sysno::kMmap));
  b.Lea(Gpr::kR9, Gpr::kRax, 0);
  b.MovImm(Gpr::kRbx, 0xd00d);
  b.Store(Gpr::kR9, Gpr::kRbx);
  b.Halt();
  Executor executor(&process, &m);
  auto result = executor.Run();
  ASSERT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "");
  EXPECT_EQ(kernel.mmap_calls(), 1u);
  EXPECT_EQ(process.dune()->hypercall_count(), 1u);  // arrived as a hypercall
  // The syscall was priced as a vmcall (613), not a syscall (108).
  EXPECT_GT(result.cycles, machine.cost.vmcall);
}

}  // namespace
}  // namespace memsentry::sim

// Tests for the deterministic fault-injection campaign: the injector's
// determinism and applicability checks, the containment audit's repairs, the
// fallback chain's downgrade path, the zero-escape property of the standard
// matrix, bit-for-bit replay, and the end-to-end claim that a deliberately
// injected escape (the skip-audit test hook) fails the regression gate.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/core/advisor.h"
#include "src/core/memsentry.h"
#include "src/eval/fault_campaign.h"
#include "src/eval/regression_gate.h"
#include "src/sim/fault_injector.h"
#include "src/sim/kernel.h"

namespace memsentry {
namespace {

using eval::Containment;
using eval::FaultCampaignOptions;
using eval::FaultCampaignResult;
using eval::FaultCellResult;
using sim::FaultSite;

constexpr uint64_t kSecret = 0x5ec4e7c0de5ec4e7ULL;

// A minimal victim: one technique, one secret-bearing safe region, prepared.
struct Victim {
  sim::Machine machine;
  sim::Process process{&machine};
  std::unique_ptr<core::MemSentry> memsentry;
  VirtAddr base = 0;

  explicit Victim(core::TechniqueKind kind) { Init(kind); }

 private:
  // ASSERT_* must live in a void function, not a constructor.
  void Init(core::TechniqueKind kind) {
    if (kind == core::TechniqueKind::kVmfunc) {
      ASSERT_TRUE(process.EnableDune().ok());
    }
    ASSERT_TRUE(process.SetupStack().ok());
    core::MemSentryConfig config;
    config.technique = kind;
    memsentry = std::make_unique<core::MemSentry>(&process, config);
    auto region = memsentry->allocator().Alloc("secret", 4096);
    ASSERT_TRUE(region.ok());
    base = region.value()->base;
    ASSERT_TRUE(process.Poke64(base, kSecret).ok());
    ASSERT_TRUE(memsentry->PrepareRuntime().ok());
  }
};

// ---------------------------------------------------------------- injector --

TEST(FaultInjector, InjectionsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Victim victim(core::TechniqueKind::kMpk);
    sim::FaultInjector injector(&victim.process, seed);
    auto injected = injector.Inject(FaultSite::kPtePkeyFlip);
    EXPECT_TRUE(injected.ok());
    return injected.ok() ? injected.value() : sim::Injection{};
  };
  const sim::Injection a = run(42);
  const sim::Injection b = run(42);
  EXPECT_EQ(a.address, b.address);
  EXPECT_EQ(a.before, b.before);
  EXPECT_EQ(a.after, b.after);
  EXPECT_EQ(a.detail, b.detail);
  // A different seed is allowed to (and here does) pick a different key.
  const sim::Injection c = run(43);
  EXPECT_EQ(a.address, c.address);  // one region, one page: same victim page
}

TEST(FaultInjector, RejectsInapplicableSites) {
  Victim victim(core::TechniqueKind::kMpk);
  sim::FaultInjector injector(&victim.process, 1);
  // No Dune, no encrypted region, no kernel hooked up.
  EXPECT_EQ(injector.Inject(FaultSite::kEptMappingDrop).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(injector.Inject(FaultSite::kAesRoundKeyClobber).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(injector.Inject(FaultSite::kSyscallMmapEnomem).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(injector.injections().empty());
}

TEST(FaultInjector, PkeyFlipNeverPicksTheOriginalKey) {
  // The flip must change the key (a no-op injection would silently pass
  // every audit); exercised across many seeds.
  for (uint64_t seed = 0; seed < 32; ++seed) {
    Victim victim(core::TechniqueKind::kMpk);
    sim::FaultInjector injector(&victim.process, seed);
    auto injected = injector.Inject(FaultSite::kPtePkeyFlip);
    ASSERT_TRUE(injected.ok());
    EXPECT_NE(injected.value().before, injected.value().after) << "seed " << seed;
  }
}

// ------------------------------------------------------------------- audit --

TEST(ContainmentAudit, RepairsPkruDesync) {
  Victim victim(core::TechniqueKind::kMpk);
  sim::FaultInjector injector(&victim.process, 7);
  ASSERT_TRUE(injector.Inject(FaultSite::kPkruDesync).ok());
  // Desynced: the attacker's ordinary read would now succeed.
  auto leaked = victim.memsentry->technique().AttackerRead(victim.process, victim.base);
  ASSERT_TRUE(leaked.ok());
  EXPECT_EQ(leaked.value(), kSecret);

  const auto issues = victim.memsentry->technique().AuditProtection(victim.process);
  ASSERT_FALSE(issues.empty());
  EXPECT_TRUE(issues[0].repaired);
  auto after = victim.memsentry->technique().AttackerRead(victim.process, victim.base);
  EXPECT_FALSE(after.ok());
}

TEST(ContainmentAudit, InvalidatesStaleTlbEntries) {
  Victim victim(core::TechniqueKind::kMprotect);
  sim::FaultInjector injector(&victim.process, 7);
  ASSERT_TRUE(injector.Inject(FaultSite::kTlbStaleEntry).ok());
  auto leaked = victim.memsentry->technique().AttackerRead(victim.process, victim.base);
  ASSERT_TRUE(leaked.ok());
  EXPECT_EQ(leaked.value(), kSecret);

  const auto issues = victim.memsentry->technique().AuditProtection(victim.process);
  ASSERT_FALSE(issues.empty());
  EXPECT_TRUE(issues[0].repaired);
  auto after = victim.memsentry->technique().AttackerRead(victim.process, victim.base);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.fault().type, machine::FaultType::kUserSupervisor);
}

TEST(ContainmentAudit, QuarantinesClobberedRoundKeys) {
  Victim victim(core::TechniqueKind::kCrypt);
  sim::FaultInjector injector(&victim.process, 7);
  ASSERT_TRUE(injector.Inject(FaultSite::kAesRoundKeyClobber).ok());
  const auto issues = victim.memsentry->technique().AuditProtection(victim.process);
  ASSERT_FALSE(issues.empty());
  // Clobbered key material cannot be repaired — only contained.
  EXPECT_FALSE(issues[0].repaired);
}

TEST(ContainmentAudit, CleanProcessAuditsClean) {
  for (const auto kind : {core::TechniqueKind::kMpk, core::TechniqueKind::kMpx,
                          core::TechniqueKind::kCrypt, core::TechniqueKind::kMprotect}) {
    Victim victim(kind);
    EXPECT_TRUE(victim.memsentry->technique().AuditProtection(victim.process).empty())
        << core::TechniqueKindName(kind);
  }
}

// ---------------------------------------------------------------- fallback --

TEST(FallbackChain, MpkExhaustionDegradesToSfi) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kMpk;
  config.fallbacks = core::DefaultFallbackChain(core::TechniqueKind::kMpk);
  core::MemSentry memsentry(&process, config);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(memsentry.allocator().Alloc("r" + std::to_string(i), 4096).ok());
  }
  ASSERT_TRUE(memsentry.PrepareRuntime().ok());
  EXPECT_EQ(memsentry.active_technique(), core::TechniqueKind::kSfi);
  ASSERT_EQ(memsentry.downgrades().size(), 1u);
  EXPECT_EQ(memsentry.downgrades()[0].from, core::TechniqueKind::kMpk);
  EXPECT_EQ(memsentry.downgrades()[0].to, core::TechniqueKind::kSfi);
}

TEST(FallbackChain, StrictConfigStillFailsClosed) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  core::MemSentry memsentry(&process, {.technique = core::TechniqueKind::kMpk});
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(memsentry.allocator().Alloc("r" + std::to_string(i), 4096).ok());
  }
  EXPECT_EQ(memsentry.PrepareRuntime().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(memsentry.downgrades().empty());
}

TEST(FallbackChain, MissingDuneDegradesVmfuncToMpk) {
  sim::Machine machine;
  sim::Process process(&machine);  // Dune never enabled
  ASSERT_TRUE(process.SetupStack().ok());
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kVmfunc;
  config.fallbacks = core::DefaultFallbackChain(core::TechniqueKind::kVmfunc);
  core::MemSentry memsentry(&process, config);
  ASSERT_TRUE(memsentry.allocator().Alloc("secret", 4096).ok());
  ASSERT_TRUE(memsentry.PrepareRuntime().ok());
  EXPECT_EQ(memsentry.active_technique(), core::TechniqueKind::kMpk);
  ASSERT_EQ(memsentry.downgrades().size(), 1u);
}

// ---------------------------------------------------------------- campaign --

TEST(FaultCampaign, StandardMatrixHasZeroEscapes) {
  const FaultCampaignResult campaign = eval::RunFaultCampaign({});
  EXPECT_EQ(campaign.cells.size(), eval::FaultMatrixCells().size());
  EXPECT_EQ(campaign.escaped, 0);
  for (const auto& cell : campaign.cells) {
    EXPECT_NE(cell.outcome, Containment::kEscaped)
        << core::TechniqueKindName(cell.technique) << "/" << sim::FaultSiteName(cell.site)
        << ": " << cell.detail;
  }
  EXPECT_EQ(campaign.detected + campaign.degraded,
            static_cast<int>(campaign.cells.size()));
  // The audit and the fallback chain both earn their keep somewhere.
  EXPECT_GT(campaign.repairs, 0);
  EXPECT_GT(campaign.downgrades, 0);
}

TEST(FaultCampaign, ReplaysBitForBit) {
  const FaultCampaignResult a = eval::RunFaultCampaign({});
  const FaultCampaignResult b = eval::RunFaultCampaign({});
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].outcome, b.cells[i].outcome);
    EXPECT_EQ(a.cells[i].cell_seed, b.cells[i].cell_seed);
    EXPECT_EQ(a.cells[i].repairs, b.cells[i].repairs);
    EXPECT_EQ(a.cells[i].quarantines, b.cells[i].quarantines);
    EXPECT_EQ(a.cells[i].downgrades, b.cells[i].downgrades);
    EXPECT_EQ(a.cells[i].detail, b.cells[i].detail);
  }
}

TEST(FaultCampaign, CellsAreOrderIndependent) {
  // A cell run standalone replays exactly its in-matrix result: per-cell
  // seeds derive from names, not from execution order.
  const FaultCampaignOptions options;
  const FaultCampaignResult campaign = eval::RunFaultCampaign(options);
  for (const size_t i : {size_t{0}, campaign.cells.size() / 2, campaign.cells.size() - 1}) {
    const FaultCellResult& in_matrix = campaign.cells[i];
    const FaultCellResult alone =
        eval::RunFaultCell(in_matrix.technique, in_matrix.site, options);
    EXPECT_EQ(alone.outcome, in_matrix.outcome);
    EXPECT_EQ(alone.cell_seed, in_matrix.cell_seed);
    EXPECT_EQ(alone.detail, in_matrix.detail);
  }
}

TEST(FaultCampaign, SkippedAuditLetsDesyncFaultsEscape) {
  // The test-only escape hook: without the containment audit, the desync
  // sites (stale TLB, PKRU, widened bounds, clobbered keys) leak or corrupt.
  FaultCampaignOptions options;
  options.skip_containment_audit = true;
  const FaultCampaignResult campaign = eval::RunFaultCampaign(options);
  EXPECT_GT(campaign.escaped, 0);
  bool pkru_escaped = false;
  for (const auto& cell : campaign.cells) {
    if (cell.technique == core::TechniqueKind::kMpk && cell.site == FaultSite::kPkruDesync) {
      pkru_escaped = cell.outcome == Containment::kEscaped;
    }
  }
  EXPECT_TRUE(pkru_escaped) << "unaudited PKRU desync must leak";
}

// ------------------------------------------------------------------- gate --

json::Value CampaignMetricsDoc(const FaultCampaignResult& campaign) {
  // Mirrors bench/fault_matrix.cc's metric naming and kinds.
  json::Value metrics = json::Value::Object();
  const auto add = [&metrics](const std::string& name, double value) {
    json::Value entry = json::Value::Object();
    entry.Set("value", value);
    entry.Set("kind", "fidelity");
    entry.Set("tol", 0.0);
    metrics.Set(name, std::move(entry));
  };
  for (const auto& cell : campaign.cells) {
    add(std::string("fault/") + core::TechniqueKindName(cell.technique) + "/" +
            sim::FaultSiteName(cell.site) + "/outcome",
        static_cast<double>(static_cast<int>(cell.outcome)));
  }
  add("fault/escaped_total", campaign.escaped);
  json::Value doc = json::Value::Object();
  doc.Set("metrics", std::move(metrics));
  return doc;
}

TEST(FaultCampaign, InjectedEscapeFailsTheRegressionGate) {
  const json::Value baseline = CampaignMetricsDoc(eval::RunFaultCampaign({}));
  // Clean run vs clean baseline: the gate passes.
  EXPECT_TRUE(eval::CompareAgainstBaseline(baseline, baseline).ok());

  FaultCampaignOptions options;
  options.skip_containment_audit = true;
  const json::Value escaped = CampaignMetricsDoc(eval::RunFaultCampaign(options));
  const eval::GateReport report = eval::CompareAgainstBaseline(escaped, baseline);
  EXPECT_FALSE(report.ok());
  bool total_flagged = false;
  for (const auto& issue : report.issues) {
    total_flagged = total_flagged || (issue.metric == "fault/escaped_total" &&
                                      issue.severity == eval::Severity::kFailure);
  }
  EXPECT_TRUE(total_flagged) << "escape count must be a gated fidelity failure";
}

}  // namespace
}  // namespace memsentry

// CampaignEngine determinism and durability contract (DESIGN.md §11):
//  - metric streams are bit-identical for every worker count / steal
//    schedule, and identical to the standalone (ParallelMap) execution;
//  - restored cells (the journal resume path) skip execution but feed
//    assembly the exact payloads, reproducing the metric stream;
//  - the runner's --engine=inproc merged report is bit-identical to the
//    historical --engine=fork report at any --jobs;
//  - a kill -9 mid-suite plus --resume converges to the clean-run report;
//  - `serve` round-trips submit/status/wait/cancel/shutdown over its socket.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/eval/campaign_engine.h"
#include "src/eval/run_memo.h"
#include "src/eval/serve.h"
#include "src/suite/workloads.h"

#if !defined(_WIN32)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

namespace memsentry {
namespace {

eval::WorkloadOptions QuickOptions() {
  eval::WorkloadOptions options;
  options.quick = true;
  options.experiment.target_instructions = 100'000;
  return options;
}

// The fast registered workloads the engine-level tests schedule. Kept small
// so the full test file stays a few seconds; the sweep-heavy workloads are
// covered by the runner-level subset below.
const std::vector<std::string>& TestWorkloads() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"fault_matrix", "table4_micro", "ablations"};
  return *names;
}

// Runs every test workload through one engine, filling `metrics_out` with
// the serialized metric stream per workload. (void so ASSERT_* can bail.)
void RunEngine(int jobs, eval::EngineOptions options,
               std::map<std::string, std::string>* metrics_out,
               eval::EngineStats* stats_out = nullptr) {
  options.jobs = jobs;
  std::map<std::string, std::string>& metrics = *metrics_out;
  eval::CampaignEngine engine(&suite::SuiteRegistry(), std::move(options));
  std::vector<uint64_t> ids;
  for (const std::string& name : TestWorkloads()) {
    const uint64_t id = engine.Submit(name, QuickOptions());
    ASSERT_NE(id, 0u) << name;
    ids.push_back(id);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    const eval::JobReport* report = engine.Wait(ids[i]);
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(report->state, eval::JobState::kDone) << report->workload;
    EXPECT_EQ(report->status, 0) << report->workload;
    EXPECT_EQ(report->cell_names.size(), report->cell_seconds.size());
    metrics[report->workload] = report->report.metrics().Dump(0);
  }
  if (stats_out != nullptr) {
    *stats_out = engine.stats();
  }
}

// The core scheduling-independence property: 1 worker, 4 workers (steal
// schedules differ run to run), and the standalone ParallelMap path all
// produce byte-identical metric streams.
TEST(CampaignEngine, MetricsIndependentOfWorkerCountAndSchedule) {
  std::map<std::string, std::string> serial;
  ASSERT_NO_FATAL_FAILURE(RunEngine(1, {}, &serial));
  std::map<std::string, std::string> parallel;
  ASSERT_NO_FATAL_FAILURE(RunEngine(4, {}, &parallel));
  EXPECT_EQ(serial, parallel);

  // Standalone execution (what the bench binaries run) emits the same
  // stream. The run memo must be value-preserving, so equality holds whether
  // or not earlier engine runs left cached entries behind.
  for (const std::string& name : TestWorkloads()) {
    const eval::Workload* workload = suite::FindSuiteWorkload(name);
    ASSERT_NE(workload, nullptr) << name;
    eval::ReportBuilder report;
    EXPECT_EQ(eval::RunWorkloadStandalone(*workload, QuickOptions(), report), 0) << name;
    EXPECT_EQ(report.metrics().Dump(0), serial[name]) << name;
  }
}

// The memo is an engine-scoped cache, not an approximation: disabling it
// must not change a single metric byte.
TEST(CampaignEngine, RunMemoIsValuePreserving) {
  eval::EngineOptions with_memo;
  with_memo.run_memo = true;
  eval::EngineOptions without_memo;
  without_memo.run_memo = false;
  std::map<std::string, std::string> memoized;
  ASSERT_NO_FATAL_FAILURE(RunEngine(2, std::move(with_memo), &memoized));
  std::map<std::string, std::string> fresh;
  ASSERT_NO_FATAL_FAILURE(RunEngine(2, std::move(without_memo), &fresh));
  EXPECT_EQ(memoized, fresh);
}

// Durability hooks: payloads recorded via on_cell_done and fed back through
// restore mark every cell done without running it, and assembly still
// produces the identical metric stream — the property bench_runner's
// --resume builds on.
TEST(CampaignEngine, RestoredCellsReproduceMetricsWithoutRunning) {
  std::mutex mutex;
  std::map<std::string, json::Value> payloads;  // "workload/cell" -> payload
  eval::EngineOptions record;
  record.on_cell_done = [&](const std::string& workload, const std::string& cell,
                            const json::Value& payload) {
    std::lock_guard<std::mutex> lock(mutex);
    payloads[workload + "/" + cell] = payload;
  };
  std::map<std::string, std::string> first;
  eval::EngineStats first_stats;
  ASSERT_NO_FATAL_FAILURE(RunEngine(2, std::move(record), &first, &first_stats));
  ASSERT_GT(payloads.size(), 0u);
  EXPECT_EQ(first_stats.cells_run, payloads.size());
  EXPECT_EQ(first_stats.cells_restored, 0u);

  eval::EngineOptions restore;
  restore.restore = [&](const std::string& workload,
                        const std::string& cell) -> const json::Value* {
    auto it = payloads.find(workload + "/" + cell);
    return it == payloads.end() ? nullptr : &it->second;
  };
  std::map<std::string, std::string> second;
  eval::EngineStats second_stats;
  ASSERT_NO_FATAL_FAILURE(RunEngine(2, std::move(restore), &second, &second_stats));
  EXPECT_EQ(first, second);
  EXPECT_EQ(second_stats.cells_run, 0u);
  EXPECT_EQ(second_stats.cells_restored, payloads.size());
}

TEST(CampaignEngine, UnknownIdsAndCancelSemantics) {
  eval::CampaignEngine engine(&suite::SuiteRegistry(), {});
  EXPECT_EQ(engine.Submit("no_such_workload", QuickOptions()), 0u);
  EXPECT_TRUE(engine.JobStatus(999).is_null());
  EXPECT_EQ(engine.Wait(999), nullptr);
  EXPECT_FALSE(engine.Cancel(999));

  const uint64_t id = engine.Submit("fault_matrix", QuickOptions());
  ASSERT_NE(id, 0u);
  const eval::JobReport* report = engine.Wait(id);
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->state, eval::JobState::kDone);
  // Finished jobs cannot be cancelled.
  EXPECT_FALSE(engine.Cancel(id));
  const json::Value status = engine.JobStatus(id);
  EXPECT_EQ(status.StringOr("state", ""), "done");
  EXPECT_EQ(status.NumberOr("cells_done", -1), status.NumberOr("cells_total", -2));
}

// `memsentry_cli serve` protocol: a resident engine behind a UNIX socket.
TEST(CampaignEngine, ServeSocketRoundTrip) {
  const std::string socket_path =
      ::testing::TempDir() + "ms_serve_" + std::to_string(::getpid()) + ".sock";
  ::unlink(socket_path.c_str());
  eval::ServeOptions options;
  options.socket_path = socket_path;
  options.registry = &suite::SuiteRegistry();
  options.jobs = 1;
  options.quiet = true;
  int serve_status = -1;
  std::thread server([&] { serve_status = eval::ServeLoop(options); });

  auto request = [&](json::Value req) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto response = eval::ServeRequest(socket_path, req);
      if (response.ok()) {
        return std::move(response).value();
      }
      ::usleep(50'000);  // server still binding
    }
    ADD_FAILURE() << "serve socket never came up: " << socket_path;
    return json::Value();
  };

  json::Value ping = json::Value::Object();
  ping.Set("cmd", "ping");
  EXPECT_TRUE(request(std::move(ping)).BoolOr("ok", false));

  json::Value list = json::Value::Object();
  list.Set("cmd", "workloads");
  const json::Value workloads = request(std::move(list));
  EXPECT_TRUE(workloads.BoolOr("ok", false));
  bool has_fault_matrix = false;
  if (const json::Value* names = workloads.Find("workloads")) {
    for (const json::Value& name : names->items()) {
      has_fault_matrix |= name.is_string() && name.string_value() == "fault_matrix";
    }
  }
  EXPECT_TRUE(has_fault_matrix);

  json::Value submit = json::Value::Object();
  submit.Set("cmd", "submit");
  submit.Set("workload", "fault_matrix");
  submit.Set("quick", true);
  submit.Set("instructions", 100'000);
  const json::Value submitted = request(std::move(submit));
  ASSERT_TRUE(submitted.BoolOr("ok", false));
  const uint64_t job = static_cast<uint64_t>(submitted.NumberOr("job", 0));
  ASSERT_GE(job, 1u);

  json::Value wait = json::Value::Object();
  wait.Set("cmd", "wait");
  wait.Set("job", job);
  const json::Value finished = request(std::move(wait));
  EXPECT_TRUE(finished.BoolOr("ok", false));
  const json::Value* info = finished.Find("job");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->StringOr("state", ""), "done");
  const json::Value* metrics = finished.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->size(), 0u);

  json::Value bogus = json::Value::Object();
  bogus.Set("cmd", "wait");
  bogus.Set("job", 424242);
  EXPECT_FALSE(request(std::move(bogus)).BoolOr("ok", true));

  json::Value cancel = json::Value::Object();
  cancel.Set("cmd", "cancel");
  cancel.Set("job", job);
  const json::Value cancelled = request(std::move(cancel));
  EXPECT_TRUE(cancelled.BoolOr("ok", false));
  EXPECT_FALSE(cancelled.BoolOr("cancelled", true));  // job already finished

  json::Value shutdown = json::Value::Object();
  shutdown.Set("cmd", "shutdown");
  EXPECT_TRUE(request(std::move(shutdown)).BoolOr("ok", false));
  server.join();
  EXPECT_EQ(serve_status, 0);
}

}  // namespace
}  // namespace memsentry

// ---------------------------------------------------------------------------
// Runner-level end-to-end: the real bench_runner binary against the real
// bench binaries.
#if defined(MEMSENTRY_BENCH_RUNNER) && defined(MEMSENTRY_BENCH_DIR)

namespace memsentry {
namespace {

namespace fs = std::filesystem;

// The registered-workload subset the runner tests sweep: one figure sweep
// (57 cells — enough to exercise stealing and mid-run kills), one fault
// sweep, one case study with a memoizable baseline.
constexpr char kSubset[] = "fig5_indirect,fault_matrix,safestack_casestudy";

struct RunnerRun {
  int exit_code = 0;
  std::string log;
  json::Value merged;
};

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::system(("rm -rf \"" + dir + "\" && mkdir -p \"" + dir + "\"").c_str());
  return dir;
}

RunnerRun RunSuite(const std::string& dir, const std::string& out_name,
                   const std::string& extra_flags) {
  RunnerRun run;
  const std::string out = dir + "/" + out_name;
  const std::string log = out + ".log";
  const std::string command = std::string("\"") + MEMSENTRY_BENCH_RUNNER + "\" --bench-dir=\"" +
                              MEMSENTRY_BENCH_DIR + "\" --only=" + kSubset + " --quick --out=\"" +
                              out + "\" --no-gate " + extra_flags + " > \"" + log + "\" 2>&1";
  const int raw = std::system(command.c_str());
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  {
    std::ifstream in(log);
    run.log.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  auto merged = json::ParseFile(out);
  EXPECT_TRUE(merged.ok()) << "no merged report at " << out << "\n" << run.log;
  if (merged.ok()) {
    run.merged = std::move(merged).value();
  }
  return run;
}

// Every fidelity/perf metric (info and host-side metrics legitimately vary
// run to run), serialized for exact comparison.
std::string GatedMetrics(const json::Value& merged) {
  std::string out;
  const json::Value* metrics = merged.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return out;
  }
  for (const auto& [name, entry] : metrics->members()) {
    const std::string kind = entry.StringOr("kind", "info");
    if (kind == "info" || entry.BoolOr("host", false)) {
      continue;
    }
    const json::Value* value = entry.Find("value");
    out += name + "=" + (value != nullptr ? value->Dump(0) : "<missing>") + "\n";
  }
  return out;
}

// The acceptance property: the inproc engine's merged report is
// bit-identical to the fork engine's at every --jobs value, and the
// runner's own --check-determinism agrees.
TEST(BenchRunnerEngine, InprocMatchesForkAtAnyJobs) {
  const std::string dir = FreshDir("campaign_engine_inproc");
  const RunnerRun fork_run = RunSuite(dir, "fork.json", "--engine=fork --jobs=2");
  ASSERT_EQ(fork_run.exit_code, 0) << fork_run.log;
  const json::Value* fork_engine = fork_run.merged.Find("engine");
  ASSERT_NE(fork_engine, nullptr);
  EXPECT_EQ(fork_engine->StringOr("engine", ""), "fork");
  const std::string fork_metrics = GatedMetrics(fork_run.merged);
  ASSERT_FALSE(fork_metrics.empty());

  for (const char* jobs : {"1", "4", "0"}) {  // 0 = hardware_concurrency
    const std::string out = std::string("inproc_j") + jobs + ".json";
    const RunnerRun inproc = RunSuite(dir, out,
                                      std::string("--engine=inproc --jobs=") + jobs +
                                          " --check-determinism=\"" + dir + "/fork.json\"");
    ASSERT_EQ(inproc.exit_code, 0) << inproc.log;
    EXPECT_NE(inproc.log.find("determinism check ok"), std::string::npos) << inproc.log;
    const json::Value* engine = inproc.merged.Find("engine");
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->StringOr("engine", ""), "inproc");
    EXPECT_GT(engine->NumberOr("cells_run", 0) + engine->NumberOr("cells_restored", 0), 0);
    EXPECT_EQ(GatedMetrics(inproc.merged), fork_metrics) << "--jobs=" << jobs;
    // Satellite: per-cell timing info metrics ride along in the merged doc.
    const json::Value* metrics = inproc.merged.Find("metrics");
    ASSERT_NE(metrics, nullptr);
    bool has_cell_timing = false;
    for (const auto& [name, entry] : metrics->members()) {
      has_cell_timing |= name.rfind("engine/seconds/", 0) == 0;
      (void)entry;
    }
    EXPECT_TRUE(has_cell_timing);
  }
}

// kill -9 mid-suite, then --resume: the journal restores finished cells and
// the re-run converges to the clean run's exact report. Robust to the
// inherent race: whether the kill lands before the journal header, mid-run,
// or after completion, the resumed report must match the reference.
TEST(BenchRunnerEngine, JournalResumeAfterKillNine) {
  const std::string dir = FreshDir("campaign_engine_resume");
  const RunnerRun reference = RunSuite(dir, "clean.json", "--engine=inproc --jobs=2");
  ASSERT_EQ(reference.exit_code, 0) << reference.log;
  const std::string reference_metrics = GatedMetrics(reference.merged);
  ASSERT_FALSE(reference_metrics.empty());

  const std::string out = dir + "/resumed.json";
  const std::string journal = dir + "/journal.jsonl";
  const std::vector<std::string> arg_strings = {
      MEMSENTRY_BENCH_RUNNER,
      "--bench-dir=" + std::string(MEMSENTRY_BENCH_DIR),
      "--only=" + std::string(kSubset),
      "--quick",
      "--engine=inproc",
      "--jobs=2",
      "--out=" + out,
      "--journal=" + journal,
      "--no-gate",
  };
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    std::vector<char*> argv;
    for (const std::string& arg : arg_strings) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ::usleep(250'000);  // let the engine get mid-suite
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);

  const RunnerRun resumed =
      RunSuite(dir, "resumed.json", "--engine=inproc --jobs=2 --journal=\"" + journal +
                                        "\" --resume");
  ASSERT_EQ(resumed.exit_code, 0) << resumed.log;
  EXPECT_EQ(GatedMetrics(resumed.merged), reference_metrics);
  // The journal survived the kill and identifies the inproc engine.
  std::ifstream in(journal);
  std::string header_line;
  ASSERT_TRUE(std::getline(in, header_line));
  auto header = json::Parse(header_line);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().StringOr("engine", ""), "inproc");
}

}  // namespace
}  // namespace memsentry

#endif  // MEMSENTRY_BENCH_RUNNER && MEMSENTRY_BENCH_DIR
#endif  // !_WIN32

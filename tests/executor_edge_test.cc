// Executor edge cases: fault paths, rare opcodes, and pricing invariants not
// covered by the main executor tests.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/sim/executor.h"
#include "src/sim/process.h"

namespace memsentry::sim {
namespace {

using ir::Builder;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using machine::Gpr;

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  ExecutorEdgeTest() : process_(&machine_) {
    EXPECT_TRUE(process_.SetupStack().ok());
    EXPECT_TRUE(process_.MapRange(kWorkingSetBase, 2, machine::PageFlags::Data()).ok());
  }
  RunResult Run(const Module& m) { return Executor(&process_, &m).Run(); }
  Machine machine_;
  Process process_;
};

TEST_F(ExecutorEdgeTest, NonCanonicalAccessFaults) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR9, kAddressSpaceEnd + 0x1000);
  b.Load(Gpr::kRbx, Gpr::kR9);
  b.Halt();
  auto r = Run(m);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_EQ(r.fault->type, machine::FaultType::kNonCanonical);
}

TEST_F(ExecutorEdgeTest, ReadOnlyPageRejectsStores) {
  ASSERT_TRUE(process_.MapRange(0x700000000000ULL, 1, machine::PageFlags::ReadOnlyData()).ok());
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR9, 0x700000000000ULL);
  b.Load(Gpr::kRbx, Gpr::kR9);   // reads fine
  b.Store(Gpr::kR9, Gpr::kRbx);  // write faults
  b.Halt();
  auto r = Run(m);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_EQ(r.fault->type, machine::FaultType::kWriteProtection);
  EXPECT_EQ(r.loads, 1u);
}

TEST_F(ExecutorEdgeTest, EnclaveOpsWithoutEnclaveFault) {
  for (Opcode op : {Opcode::kEnclaveEnter, Opcode::kEnclaveExit}) {
    Module m;
    Builder b(&m);
    b.CreateFunction("main");
    b.Emit(Instr{.op = op});
    b.Halt();
    auto r = Run(m);
    ASSERT_TRUE(r.fault.has_value()) << ir::OpcodeName(op);
    EXPECT_EQ(r.fault->type, machine::FaultType::kEnclaveExit);
  }
}

TEST_F(ExecutorEdgeTest, VmCallWithoutDuneFaults) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Emit(Instr{.op = Opcode::kVmCall, .imm = 2});
  b.Halt();
  auto r = Run(m);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_EQ(r.fault->type, machine::FaultType::kGeneralProtection);
}

TEST_F(ExecutorEdgeTest, AesCryptOnNonCryptRegionFaults) {
  process_.AddSafeRegion("plain", kWorkingSetBase, 64);  // crypt flag unset
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRax, kWorkingSetBase);
  b.Emit(Instr{.op = Opcode::kAesCryptRegion, .src = Gpr::kRax});
  b.Halt();
  auto r = Run(m);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_EQ(r.fault->type, machine::FaultType::kGeneralProtection);
}

TEST_F(ExecutorEdgeTest, RdpkruReadsCurrentValue) {
  process_.regs().pkru.value = 0x30;
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Emit(Instr{.op = Opcode::kRdpkru, .dst = Gpr::kRbx});
  b.Halt();
  auto r = Run(m);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(process_.regs()[Gpr::kRbx], 0x30u);
}

TEST_F(ExecutorEdgeTest, MfenceAndNopCostButDoNothing) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Emit(Instr{.op = Opcode::kNop});
  b.Emit(Instr{.op = Opcode::kMFence});
  b.Halt();
  auto r = Run(m);
  EXPECT_TRUE(r.halted);
  EXPECT_GT(r.cycles, 20.0);  // the fence dominates
  EXPECT_EQ(r.instructions, 3u);
}

TEST_F(ExecutorEdgeTest, MprotectOpcodeTogglesAllRegions) {
  ASSERT_TRUE(process_.MapRange(0x480000000000ULL, 1, machine::PageFlags::Data()).ok());
  process_.AddSafeRegion("r", 0x480000000000ULL, 4096);
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Emit(Instr{.op = Opcode::kMprotect, .imm = 0});  // close
  b.MovImm(Gpr::kR9, 0x480000000000ULL);
  b.Load(Gpr::kRbx, Gpr::kR9);                       // must fault
  b.Halt();
  auto closed = Run(m);
  ASSERT_TRUE(closed.fault.has_value());
  EXPECT_EQ(closed.fault->type, machine::FaultType::kUserSupervisor);

  Module m2;
  Builder b2(&m2);
  b2.CreateFunction("main");
  b2.Emit(Instr{.op = Opcode::kMprotect, .imm = 1});  // reopen
  b2.MovImm(Gpr::kR9, 0x480000000000ULL);
  b2.Load(Gpr::kRbx, Gpr::kR9);
  b2.Halt();
  auto open = Run(m2);
  EXPECT_TRUE(open.halted);
  EXPECT_EQ(open.domain_switches, 1u);
}

TEST_F(ExecutorEdgeTest, CondBrFallthroughPath) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  const int taken = b.NewBlock();
  const int fall = b.NewBlock();
  b.MovImm(Gpr::kRbx, 5);
  b.AddImm(Gpr::kRbx, -5);  // zero_flag set -> fall through
  b.CondBr(taken);
  b.SetInsertPoint(0, taken);
  b.MovImm(Gpr::kRcx, 1);
  b.Halt();
  b.SetInsertPoint(0, fall);
  b.MovImm(Gpr::kRcx, 2);
  b.Halt();
  auto r = Run(m);
  EXPECT_TRUE(r.halted);
  // Fallthrough goes to the *next* block in layout order (taken = block 1).
  EXPECT_EQ(process_.regs()[Gpr::kRcx], 1u);
}

TEST_F(ExecutorEdgeTest, EntryFunctionRetEndsProgram) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRbx, 9);
  b.Ret();  // return from entry: clean exit
  auto r = Run(m);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(process_.regs()[Gpr::kRbx], 9u);
}

TEST_F(ExecutorEdgeTest, InstrumentationCyclesAttributed) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  auto& wrpkru = b.Emit(Instr{.op = Opcode::kWrpkru, .imm = 0});
  wrpkru.flags |= ir::kFlagInstrumentation;
  b.AddImm(Gpr::kRbx, 1);  // not instrumentation
  b.Halt();
  auto r = Run(m);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.instrumentation_instrs, 1u);
  EXPECT_GE(r.instrumentation_cycles, machine_.cost.wrpkru);
  EXPECT_LT(r.instrumentation_cycles, r.cycles);
}

TEST_F(ExecutorEdgeTest, StoreValueSurvivesFaultFreePath) {
  // WriteBytes/ReadBytes consistency through the MMU on page straddles.
  ASSERT_TRUE(process_.MapRange(0x700000000000ULL, 2, machine::PageFlags::Data()).ok());
  std::vector<uint8_t> data(300);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 3);
  }
  Cycles cycles = 0;
  ASSERT_TRUE(process_.mmu()
                  .WriteBytes(0x700000000F80ULL, data.data(), data.size(),
                              process_.regs().pkru, &cycles)
                  .ok());
  std::vector<uint8_t> back(300);
  ASSERT_TRUE(process_.mmu()
                  .ReadBytes(0x700000000F80ULL, back.data(), back.size(), process_.regs().pkru,
                             &cycles)
                  .ok());
  EXPECT_EQ(data, back);
}

}  // namespace
}  // namespace memsentry::sim

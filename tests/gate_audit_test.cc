#include <gtest/gtest.h>

#include "src/core/gate_audit.h"
#include "src/core/memsentry.h"
#include "src/defenses/shadow_stack.h"
#include "src/ir/builder.h"
#include "src/sim/fault_injector.h"
#include "src/workloads/synth.h"

namespace memsentry::core {
namespace {

using machine::Gpr;

// Every technique's MemSentry output must pass the audit, over a real
// workload with a real defense pass.
class GateAuditCleanTest : public ::testing::TestWithParam<TechniqueKind> {};

INSTANTIATE_TEST_SUITE_P(DomainTechniques, GateAuditCleanTest,
                         ::testing::Values(TechniqueKind::kMpk, TechniqueKind::kVmfunc,
                                           TechniqueKind::kCrypt, TechniqueKind::kSgx,
                                           TechniqueKind::kMprotect),
                         [](const auto& info) {
                           return std::string(TechniqueKindName(info.param));
                         });

TEST_P(GateAuditCleanTest, MemSentryOutputPassesAudit) {
  sim::Machine machine;
  sim::Process process(&machine);
  if (GetParam() == TechniqueKind::kVmfunc) {
    ASSERT_TRUE(process.EnableDune().ok());
  }
  const auto& profile = *workloads::FindProfile("445.gobmk");
  ASSERT_TRUE(workloads::PrepareWorkloadProcess(process, profile).ok());
  MemSentryConfig config;
  config.technique = GetParam();
  MemSentry ms(&process, config);
  auto region =
      ms.allocator().Alloc("r", GetParam() == TechniqueKind::kCrypt ? 16 : 4096);
  ASSERT_TRUE(region.ok());
  workloads::SynthOptions synth;
  synth.target_instructions = 40'000;
  ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);
  defenses::ShadowStackPass defense(region.value()->base);
  ASSERT_TRUE(defense.Run(module).ok());
  ASSERT_TRUE(ms.Protect(module).ok());

  const GateAuditResult audit = AuditDomainGates(module);
  EXPECT_TRUE(audit.ok()) << audit.findings.size() << " findings, first: "
                          << (audit.findings.empty() ? "" : audit.findings[0].problem);
  EXPECT_GT(audit.gates_checked, 0u);
}

ir::Module BareModule() {
  ir::Module m;
  ir::Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRbx, 1);
  b.Halt();
  return m;
}

TEST(GateAuditTest, CleanModuleHasNoGates) {
  const ir::Module m = BareModule();
  const auto audit = AuditDomainGates(m);
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.gates_checked, 0u);
}

TEST(GateAuditTest, FlagsAttackerReachableWrpkru) {
  // A wrpkru the compiler/attacker smuggled in without the MemSentry flag —
  // the gadget ERIM scans binaries for.
  ir::Module m = BareModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  instrs.insert(instrs.begin(), ir::Instr{.op = ir::Opcode::kWrpkru, .imm = 0});
  const auto audit = AuditDomainGates(m);
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.findings[0].problem.find("attacker-reachable"), std::string::npos);
}

TEST(GateAuditTest, FlagsDanglingOpen) {
  ir::Module m = BareModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  ir::Instr open{.op = ir::Opcode::kWrpkru, .imm = 0};
  open.flags = ir::kFlagInstrumentation;
  instrs.insert(instrs.begin(), open);  // opened, never closed
  const auto audit = AuditDomainGates(m);
  ASSERT_FALSE(audit.ok());
  bool found = false;
  for (const auto& finding : audit.findings) {
    found |= finding.problem.find("left open") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(GateAuditTest, FlagsCloseWithoutOpen) {
  ir::Module m = BareModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  ir::Instr close{.op = ir::Opcode::kWrpkru, .imm = 0xc};
  close.flags = ir::kFlagInstrumentation;
  instrs.insert(instrs.begin(), close);
  const auto audit = AuditDomainGates(m);
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.findings[0].problem.find("without a matching open"), std::string::npos);
}

TEST(GateAuditTest, FlagsDoubleOpen) {
  ir::Module m = BareModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  ir::Instr open{.op = ir::Opcode::kVmFunc, .imm = 1};
  open.flags = ir::kFlagInstrumentation;
  ir::Instr close{.op = ir::Opcode::kVmFunc, .imm = 0};
  close.flags = ir::kFlagInstrumentation;
  instrs.insert(instrs.begin(), {open, open, close});
  const auto audit = AuditDomainGates(m);
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.findings[0].problem.find("already open"), std::string::npos);
}

TEST(GateAuditTest, CorruptedPkruAtGateBoundaryIsContained) {
  // ERIM's residual-risk scenario: the static gate audit proves every wrpkru
  // in the module is instrumentation-flagged and paired, yet the attacker
  // corrupts PKRU *between* a close gate and the next access (a smuggled
  // gadget elsewhere, a sigreturn, a kernel bug). Static auditing cannot see
  // that; the runtime containment audit must close the window at the next
  // closed-domain checkpoint.
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  MemSentryConfig config;
  config.technique = TechniqueKind::kMpk;
  MemSentry ms(&process, config);
  auto region = ms.allocator().Alloc("secret", 4096);
  ASSERT_TRUE(region.ok());
  constexpr uint64_t kSecret = 0x5ec4e7c0de5ec4e7ULL;
  ASSERT_TRUE(process.Poke64(region.value()->base, kSecret).ok());

  // The instrumented module itself is gate-clean.
  ir::Module module = BareModule();
  ASSERT_TRUE(ms.Protect(module).ok());
  EXPECT_TRUE(AuditDomainGates(module).ok());

  // PKRU flips at the gate boundary: the attacker's window is open and the
  // static audit, by construction, still passes.
  sim::FaultInjector injector(&process, 0x5eed);
  ASSERT_TRUE(injector.Inject(sim::FaultSite::kPkruDesync).ok());
  EXPECT_TRUE(AuditDomainGates(module).ok());
  auto leaked = ms.technique().AttackerRead(process, region.value()->base);
  ASSERT_TRUE(leaked.ok());
  EXPECT_EQ(leaked.value(), kSecret);

  // The containment audit names the desync, repairs it, and the window is
  // closed again.
  const auto issues = ms.technique().AuditProtection(process);
  ASSERT_FALSE(issues.empty());
  EXPECT_TRUE(issues[0].repaired);
  EXPECT_NE(issues[0].what.find("PKRU desync"), std::string::npos);
  auto after = ms.technique().AttackerRead(process, region.value()->base);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.fault().type, machine::FaultType::kPkeyAccessDisabled);
}

TEST(GateAuditTest, FlagsUnbalancedCryptToggle) {
  ir::Module m = BareModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  ir::Instr toggle{.op = ir::Opcode::kAesCryptRegion, .src = Gpr::kRax};
  toggle.flags = ir::kFlagInstrumentation;
  instrs.insert(instrs.begin(), toggle);  // one toggle: region left decrypted
  const auto audit = AuditDomainGates(m);
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.findings[0].problem.find("unbalanced crypt"), std::string::npos);
}

}  // namespace
}  // namespace memsentry::core

// The MemSentry pass end-to-end: instrumented programs run to completion with
// legitimate (annotated) safe-region accesses working, while un-annotated
// accesses to the safe region are stopped — for every technique.
#include <gtest/gtest.h>

#include "src/core/memsentry.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/sim/executor.h"

namespace memsentry::core {
namespace {

using ir::Builder;
using ir::Module;
using ir::Opcode;
using machine::Gpr;

constexpr uint64_t kMagic = 0x600df00dULL;

// Builds: store kMagic to the safe region (annotated), one plain working-set
// load, halt. When `annotate` is false the safe-region store is a plain
// (attacker-reachable) store.
Module AccessProgram(VirtAddr region_base, bool annotate) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRbx, kMagic);
  b.MovImm(Gpr::kR14, region_base);
  auto& store = b.Store(Gpr::kR14, Gpr::kRbx);
  if (annotate) {
    MarkSafeRegionAccess(store);
  }
  b.MovImm(Gpr::kR9, sim::kWorkingSetBase);
  b.Load(Gpr::kRcx, Gpr::kR9);
  b.Halt();
  return m;
}

struct Env {
  sim::Machine machine;
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<MemSentry> memsentry;
  VirtAddr base = 0;

  explicit Env(TechniqueKind kind, ProtectMode mode = ProtectMode::kReadWrite) {
    process = std::make_unique<sim::Process>(&machine);
    if (kind == TechniqueKind::kVmfunc) {
      EXPECT_TRUE(process->EnableDune().ok());
    }
    EXPECT_TRUE(process->SetupStack().ok());
    EXPECT_TRUE(process->MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data()).ok());
    MemSentryConfig config;
    config.technique = kind;
    config.options.mode = mode;
    memsentry = std::make_unique<MemSentry>(process.get(), config);
    auto region = memsentry->allocator().Alloc("region", 4096);
    EXPECT_TRUE(region.ok());
    base = region.value()->base;
  }

  // Ground truth of the first safe-region word, decrypting if necessary.
  uint64_t RegionWord() {
    auto& region = process->safe_regions()[0];
    if (region.crypt && region.encrypted_now) {
      std::vector<uint8_t> bytes(region.size);
      EXPECT_TRUE(process->PeekBytes(region.base, bytes.data(), region.size).ok());
      aes::CryptRegion(bytes, region.enc_keys, region.nonce);
      uint64_t v = 0;
      memcpy(&v, bytes.data(), 8);
      return v;
    }
    return process->Peek64(base).value();
  }
};

class AllTechniquesTest : public ::testing::TestWithParam<TechniqueKind> {};

INSTANTIATE_TEST_SUITE_P(Deterministic, AllTechniquesTest,
                         ::testing::Values(TechniqueKind::kSfi, TechniqueKind::kMpx,
                                           TechniqueKind::kMpk, TechniqueKind::kVmfunc,
                                           TechniqueKind::kCrypt, TechniqueKind::kSgx,
                                           TechniqueKind::kMprotect),
                         [](const auto& info) {
                           return std::string(TechniqueKindName(info.param));
                         });

TEST_P(AllTechniquesTest, AnnotatedAccessSucceedsEndToEnd) {
  Env env(GetParam());
  Module m = AccessProgram(env.base, /*annotate=*/true);
  ASSERT_TRUE(env.memsentry->Protect(m).ok());
  ASSERT_TRUE(ir::Verify(m).ok());
  sim::Executor executor(env.process.get(), &m);
  auto result = executor.Run();
  EXPECT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "no fault");
  EXPECT_FALSE(result.fault.has_value());
  EXPECT_EQ(env.RegionWord(), kMagic);
}

TEST_P(AllTechniquesTest, UnannotatedAccessIsStopped) {
  Env env(GetParam());
  Module m = AccessProgram(env.base, /*annotate=*/false);
  ASSERT_TRUE(env.memsentry->Protect(m).ok());
  sim::Executor executor(env.process.get(), &m);
  auto result = executor.Run();
  // Either the machine faulted (domain-based / MPX) or the store was
  // silently diverted (SFI) or landed on ciphertext (crypt). In every case
  // the region's logical content must NOT be the attacker's value.
  EXPECT_NE(env.RegionWord(), kMagic);
}

TEST_P(AllTechniquesTest, InstrumentationRunsAreWellFormed) {
  Env env(GetParam());
  Module m = AccessProgram(env.base, /*annotate=*/true);
  const uint64_t before = m.InstrCount();
  ASSERT_TRUE(env.memsentry->Protect(m).ok());
  EXPECT_GE(m.InstrCount(), before);
  EXPECT_TRUE(ir::Verify(m).ok());
}

TEST(MemSentryPassTest, AddressBasedInsertsPerAccessChecks) {
  Env env(TechniqueKind::kMpx);
  Module m = AccessProgram(env.base, /*annotate=*/true);
  ASSERT_TRUE(env.memsentry->technique().Prepare(*env.process).ok());
  MemSentryPass pass(&env.memsentry->technique(), env.process.get(), InstrumentOptions{});
  ASSERT_TRUE(pass.Run(m).ok());
  // One plain load instrumented; the annotated store exempt.
  EXPECT_EQ(pass.checks_inserted(), 1u);
  EXPECT_EQ(m.CountIf([](const ir::Instr& i) { return i.op == Opcode::kBndcu; }), 1u);
}

TEST(MemSentryPassTest, WriteOnlyModeSkipsLoads) {
  Env env(TechniqueKind::kMpx, ProtectMode::kWriteOnly);
  Module m = AccessProgram(env.base, /*annotate=*/false);
  ASSERT_TRUE(env.memsentry->technique().Prepare(*env.process).ok());
  InstrumentOptions opts;
  opts.mode = ProtectMode::kWriteOnly;
  MemSentryPass pass(&env.memsentry->technique(), env.process.get(), opts);
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(pass.checks_inserted(), 1u);  // just the store
}

TEST(MemSentryPassTest, ReadOnlyModeSkipsStores) {
  Env env(TechniqueKind::kSfi, ProtectMode::kReadOnly);
  Module m = AccessProgram(env.base, /*annotate=*/false);
  ASSERT_TRUE(env.memsentry->technique().Prepare(*env.process).ok());
  InstrumentOptions opts;
  opts.mode = ProtectMode::kReadOnly;
  MemSentryPass pass(&env.memsentry->technique(), env.process.get(), opts);
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(pass.checks_inserted(), 1u);  // just the load
}

TEST(MemSentryPassTest, DomainBasedWrapsAnnotatedRuns) {
  Env env(TechniqueKind::kMpk);
  Module m = AccessProgram(env.base, /*annotate=*/true);
  ASSERT_TRUE(env.memsentry->technique().Prepare(*env.process).ok());
  MemSentryPass pass(&env.memsentry->technique(), env.process.get(), InstrumentOptions{});
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(pass.switch_pairs_inserted(), 1u);
  EXPECT_EQ(m.CountIf([](const ir::Instr& i) { return i.op == Opcode::kWrpkru; }), 2u);
}

TEST(MemSentryPassTest, ContiguousRunSharesOneSwitchPair) {
  Env env(TechniqueKind::kMpk);
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR14, env.base);
  b.MovImm(Gpr::kRbx, 1);
  MarkSafeRegionAccess(b.Store(Gpr::kR14, Gpr::kRbx));
  MarkSafeRegionAccess(b.Load(Gpr::kRcx, Gpr::kR14));
  MarkSafeRegionAccess(b.Store(Gpr::kR14, Gpr::kRcx));
  b.Halt();
  ASSERT_TRUE(env.memsentry->technique().Prepare(*env.process).ok());
  MemSentryPass pass(&env.memsentry->technique(), env.process.get(), InstrumentOptions{});
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(pass.switch_pairs_inserted(), 1u);  // one open/close around the run
}

TEST(MemSentryPassTest, MpxDoubleBoundsAblationEmitsBndcl) {
  Env env(TechniqueKind::kMpx);
  Module m = AccessProgram(env.base, /*annotate=*/true);
  ASSERT_TRUE(env.memsentry->technique().Prepare(*env.process).ok());
  InstrumentOptions opts;
  opts.mpx_double_bounds = true;
  MemSentryPass pass(&env.memsentry->technique(), env.process.get(), opts);
  ASSERT_TRUE(pass.Run(m).ok());
  EXPECT_EQ(m.CountIf([](const ir::Instr& i) { return i.op == Opcode::kBndcl; }), 1u);
}

TEST(MemSentryPassTest, InfoHideInstrumentsNothing) {
  Env env(TechniqueKind::kInfoHide);
  Module m = AccessProgram(env.base, /*annotate=*/false);
  const uint64_t before = m.InstrCount();
  ASSERT_TRUE(env.memsentry->Protect(m).ok());
  EXPECT_EQ(m.InstrCount(), before);
  // And the program can freely write the "hidden" region: the paper's point.
  sim::Executor executor(env.process.get(), &m);
  auto result = executor.Run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(env.process->Peek64(env.base).value(), kMagic);
}

}  // namespace
}  // namespace memsentry::core

// The parallel experiment engine's hard requirement: fanning the figure
// sweeps out over worker threads must produce byte-identical results to a
// serial run. Every (profile, config) cell builds its own machine from the
// deterministic seed, and series assembly happens serially in suite order,
// so even the floating-point sums and geomeans must match bit for bit —
// EXPECT_EQ on doubles, no tolerance.
#include <gtest/gtest.h>

#include "src/eval/figures.h"
#include "src/workloads/spec_profiles.h"

namespace memsentry::eval {
namespace {

ExperimentOptions Tiny(int jobs) {
  ExperimentOptions options;
  options.target_instructions = 20'000;
  options.jobs = jobs;
  return options;
}

void ExpectBitIdentical(const std::vector<FigureSeries>& serial,
                        const std::vector<FigureSeries>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t s = 0; s < serial.size(); ++s) {
    SCOPED_TRACE(serial[s].config);
    EXPECT_EQ(serial[s].config, parallel[s].config);
    EXPECT_EQ(serial[s].geomean, parallel[s].geomean);
    EXPECT_EQ(serial[s].total_base_cycles, parallel[s].total_base_cycles);
    EXPECT_EQ(serial[s].total_prot_cycles, parallel[s].total_prot_cycles);
    ASSERT_EQ(serial[s].normalized.size(), parallel[s].normalized.size());
    for (size_t b = 0; b < serial[s].normalized.size(); ++b) {
      EXPECT_EQ(serial[s].normalized[b], parallel[s].normalized[b]) << "benchmark " << b;
    }
  }
}

TEST(ParallelDeterminismTest, Figure3ParallelEqualsSerialBitForBit) {
  ExpectBitIdentical(RunFigure3(Tiny(1)), RunFigure3(Tiny(4)));
}

TEST(ParallelDeterminismTest, Figure4ParallelEqualsSerialBitForBit) {
  ExpectBitIdentical(RunFigure4(Tiny(1)), RunFigure4(Tiny(4)));
}

TEST(ParallelDeterminismTest, ParallelRunsAreRepeatable) {
  // Two parallel runs with different worker counts also agree with each
  // other — determinism is a property of the cells, not of lucky pairing
  // with the serial schedule.
  ExpectBitIdentical(RunFigure3(Tiny(2)), RunFigure3(Tiny(8)));
}

TEST(ParallelDeterminismTest, CryptSweepParallelEqualsSerial) {
  const auto& profile = *workloads::FindProfile("401.bzip2");
  const auto serial = RunCryptSizeSweep(profile, {16, 64, 256}, Tiny(1));
  const auto parallel = RunCryptSizeSweep(profile, {16, 64, 256}, Tiny(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].region_bytes, parallel[i].region_bytes);
    EXPECT_EQ(serial[i].normalized, parallel[i].normalized);
    EXPECT_EQ(serial[i].prot_cycles, parallel[i].prot_cycles);
  }
}

TEST(ParallelDeterminismTest, JobsZeroMeansAutoAndStaysDeterministic) {
  // jobs=0 resolves to hardware_concurrency; whatever that is on the host,
  // the results must equal the serial reference.
  ExpectBitIdentical(RunFigure4(Tiny(1)), RunFigure4(Tiny(0)));
}

}  // namespace
}  // namespace memsentry::eval

// Dynamic (PIN-style) vs static (DSA-style) points-to — paper Section 5.5:
// the static analysis over-approximates (conservative), the dynamic profile
// is exact for the profiled input but under-approximates across inputs.
#include <gtest/gtest.h>

#include "src/core/memsentry.h"
#include "src/ir/pointsto.h"
#include "src/sim/executor.h"
#include "src/sim/profiling.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

using workloads::SpecProfile;

SpecProfile SmallProfile() {
  SpecProfile profile = *workloads::FindProfile("401.bzip2");
  profile.ws_kb = 64;
  return profile;
}

struct DataScenario {
  sim::Machine machine;
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<core::MemSentry> memsentry;
  ir::Module module;
  VirtAddr base = 0;

  explicit DataScenario(uint64_t synth_seed = 0xbe7cd06eULL,
                        core::TechniqueKind kind = core::TechniqueKind::kMpk) {
    process = std::make_unique<sim::Process>(&machine);
    const SpecProfile profile = SmallProfile();
    EXPECT_TRUE(workloads::PrepareWorkloadProcess(*process, profile).ok());
    core::MemSentryConfig config;
    config.technique = kind;
    memsentry = std::make_unique<core::MemSentry>(process.get(), config);
    auto region = memsentry->allocator().Alloc("program-data", 4096);
    EXPECT_TRUE(region.ok());
    base = region.value()->base;
    workloads::SynthOptions synth;
    synth.target_instructions = 60'000;
    synth.seed = synth_seed;
    synth.safe_accesses_per_ki = 4;
    synth.safe_region_base = base;
    module = workloads::SynthesizeSpecProgram(profile, synth);
  }
};

TEST(DynamicPointsToTest, FindsExactlyTheTouchingInstructions) {
  DataScenario s;
  auto result = sim::DynamicPointsTo(*s.process, s.module);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->annotated, 0u);
  // Every annotated instruction is a memory access.
  uint64_t annotated_mem = s.module.CountIf(
      [](const ir::Instr& i) { return i.IsSafeAccess() && i.IsMemoryAccess(); });
  uint64_t annotated_all =
      s.module.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });
  EXPECT_EQ(annotated_mem, annotated_all);
  EXPECT_EQ(annotated_all, result->annotated);
}

TEST(DynamicPointsToTest, RefusesToProfileAfterPrepare) {
  DataScenario s;
  ASSERT_TRUE(s.memsentry->PrepareRuntime().ok());  // region now closed
  auto result = sim::DynamicPointsTo(*s.process, s.module);
  EXPECT_FALSE(result.ok());
}

TEST(DynamicPointsToTest, AnnotatedProgramRunsCleanUnderMpk) {
  DataScenario s;
  // Profile on a scratch copy of the process (profiling mutates state).
  {
    sim::Machine scratch_machine;
    sim::Process scratch(&scratch_machine);
    const SpecProfile profile = SmallProfile();
    ASSERT_TRUE(workloads::PrepareWorkloadProcess(scratch, profile).ok());
    ASSERT_TRUE(scratch.MapRange(s.base, 1, machine::PageFlags::Data()).ok());
    scratch.AddSafeRegion("program-data", s.base, 4096);
    ASSERT_TRUE(sim::DynamicPointsTo(scratch, s.module).ok());
  }
  // The annotations transfer to the real process: protect and run.
  ASSERT_TRUE(s.memsentry->Protect(s.module).ok());
  sim::Executor executor(s.process.get(), &s.module);
  auto result = executor.Run();
  EXPECT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "");
  EXPECT_GT(result.domain_switches, 0u);
}

TEST(DynamicPointsToTest, StaticConservativeIsASuperset) {
  DataScenario s;
  // Dynamic: exact annotations.
  ir::Module dynamic_module = s.module;
  {
    sim::Machine scratch_machine;
    sim::Process scratch(&scratch_machine);
    ASSERT_TRUE(workloads::PrepareWorkloadProcess(scratch, SmallProfile()).ok());
    ASSERT_TRUE(scratch.MapRange(s.base, 1, machine::PageFlags::Data()).ok());
    scratch.AddSafeRegion("program-data", s.base, 4096);
    ASSERT_TRUE(sim::DynamicPointsTo(scratch, dynamic_module).ok());
  }
  const uint64_t dynamic_count =
      dynamic_module.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });

  // Static conservative: must cover everything dynamic found, and more (the
  // table-indirected pointers have unknown provenance -> DSA conservatism).
  ir::Module static_module = s.module;
  const ir::SafeRange range{s.base, 4096};
  auto result = ir::AnalyzePointsTo(static_module, std::span(&range, 1),
                                    /*conservative=*/true, /*annotate=*/true);
  const uint64_t static_count =
      static_module.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });
  EXPECT_GT(static_count, dynamic_count);
  EXPECT_GT(result.MayAccessFraction(), 0.0);

  // Every dynamically-found instruction is also statically flagged.
  for (size_t f = 0; f < s.module.functions.size(); ++f) {
    for (size_t b = 0; b < s.module.functions[f].blocks.size(); ++b) {
      const auto& dyn_instrs = dynamic_module.functions[f].blocks[b].instrs;
      const auto& stat_instrs = static_module.functions[f].blocks[b].instrs;
      for (size_t i = 0; i < dyn_instrs.size(); ++i) {
        if (dyn_instrs[i].IsSafeAccess()) {
          EXPECT_TRUE(stat_instrs[i].IsSafeAccess()) << f << ":" << b << ":" << i;
        }
      }
    }
  }
}

TEST(DynamicPointsToTest, OptimisticStaticMissesLoadedPointers) {
  // The non-conservative static mode only proves constant-derived pointers:
  // the accesses through the reloaded table pointer are missed — the
  // unsoundness that makes pure static under-approximation dangerous.
  DataScenario s;
  ir::Module optimistic = s.module;
  const ir::SafeRange range{s.base, 4096};
  (void)ir::AnalyzePointsTo(optimistic, std::span(&range, 1), /*conservative=*/false,
                            /*annotate=*/true);
  ir::Module dynamic_module = s.module;
  {
    sim::Machine scratch_machine;
    sim::Process scratch(&scratch_machine);
    ASSERT_TRUE(workloads::PrepareWorkloadProcess(scratch, SmallProfile()).ok());
    ASSERT_TRUE(scratch.MapRange(s.base, 1, machine::PageFlags::Data()).ok());
    scratch.AddSafeRegion("program-data", s.base, 4096);
    ASSERT_TRUE(sim::DynamicPointsTo(scratch, dynamic_module).ok());
  }
  const uint64_t optimistic_count =
      optimistic.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });
  const uint64_t dynamic_count =
      dynamic_module.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });
  EXPECT_LT(optimistic_count, dynamic_count);
}

TEST(DynamicPointsToTest, UnderApproximationFaultsOnUnprofiledPaths) {
  // Profile the program synthesized with seed A, then run the *seed B*
  // program with A's annotations transplanted: the differently-placed safe
  // accesses are not annotated and fault under MPK — the paper's warning
  // about dynamic analysis ("only accesses related to particular inputs are
  // recorded").
  DataScenario a(/*synth_seed=*/1);
  DataScenario b(/*synth_seed=*/2);
  {
    sim::Machine scratch_machine;
    sim::Process scratch(&scratch_machine);
    ASSERT_TRUE(workloads::PrepareWorkloadProcess(scratch, SmallProfile()).ok());
    ASSERT_TRUE(scratch.MapRange(a.base, 1, machine::PageFlags::Data()).ok());
    scratch.AddSafeRegion("program-data", a.base, 4096);
    ASSERT_TRUE(sim::DynamicPointsTo(scratch, a.module).ok());
  }
  // "Transplant": protect b's process but run b's (unannotated) program.
  ASSERT_TRUE(b.memsentry->Protect(b.module).ok());
  sim::Executor executor(b.process.get(), &b.module);
  auto result = executor.Run();
  ASSERT_TRUE(result.fault.has_value());
  EXPECT_EQ(result.fault->type, machine::FaultType::kPkeyAccessDisabled);
}

}  // namespace
}  // namespace memsentry

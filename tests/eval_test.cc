// Unit tests of the experiment harness (src/eval/figures.h) — structural
// properties; the quantitative bands live in calibration_test.cc.
#include <gtest/gtest.h>

#include "src/eval/figures.h"
#include "src/workloads/spec_profiles.h"

namespace memsentry::eval {
namespace {

ExperimentOptions Tiny() {
  ExperimentOptions options;
  options.target_instructions = 40'000;
  return options;
}

TEST(EvalTest, ScenarioNames) {
  EXPECT_STREQ(DomainScenarioName(DomainScenario::kCallRet), "call/ret");
  EXPECT_STREQ(DomainScenarioName(DomainScenario::kIndirectBranch), "indirect-branch");
  EXPECT_STREQ(DomainScenarioName(DomainScenario::kSyscall), "syscall");
}

TEST(EvalTest, AddressBasedExperimentReturnsOverheadAboveOne) {
  const auto& profile = *workloads::FindProfile("456.hmmer");
  const double x = RunAddressBasedExperiment(profile, core::TechniqueKind::kMpx,
                                             core::ProtectMode::kReadWrite, Tiny());
  EXPECT_GT(x, 1.0);
  EXPECT_LT(x, 2.0);
}

TEST(EvalTest, DomainBasedExperimentRunsEveryScenario) {
  const auto& profile = *workloads::FindProfile("445.gobmk");
  for (auto scenario : {DomainScenario::kCallRet, DomainScenario::kIndirectBranch,
                        DomainScenario::kSyscall}) {
    const double x =
        RunDomainBasedExperiment(profile, core::TechniqueKind::kMpk, scenario, Tiny());
    EXPECT_GT(x, 0.99) << DomainScenarioName(scenario);
  }
}

TEST(EvalTest, ScenariosOrderByEventDensity) {
  // call/ret events are denser than indirect branches, which are denser than
  // syscalls: overheads must order the same way for any one technique.
  const auto& profile = *workloads::FindProfile("400.perlbench");
  const double callret =
      RunDomainBasedExperiment(profile, core::TechniqueKind::kMpk, DomainScenario::kCallRet,
                               Tiny());
  const double indirect = RunDomainBasedExperiment(profile, core::TechniqueKind::kMpk,
                                                   DomainScenario::kIndirectBranch, Tiny());
  const double syscall =
      RunDomainBasedExperiment(profile, core::TechniqueKind::kMpk, DomainScenario::kSyscall,
                               Tiny());
  EXPECT_GT(callret, indirect);
  EXPECT_GT(indirect, syscall);
}

TEST(EvalTest, SeriesCoverTheWholeSuite) {
  const auto series = RunFigure3(Tiny());
  ASSERT_EQ(series.size(), 6u);
  for (const auto& s : series) {
    EXPECT_EQ(s.normalized.size(), workloads::SpecCpu2006().size());
    EXPECT_GT(s.geomean, 1.0);
  }
}

TEST(EvalTest, CryptSweepReturnsRequestedSizes) {
  const auto points =
      RunCryptSizeSweep(*workloads::FindProfile("401.bzip2"), {16, 64}, Tiny());
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].region_bytes, 16u);
  EXPECT_EQ(points[1].region_bytes, 64u);
  EXPECT_GT(points[1].normalized, points[0].normalized);
}

TEST(EvalTest, SgxWorksAsDomainTechniqueButCostsDearly) {
  // Our harness supports SGX as a fourth domain technique (an extension
  // beyond the paper's three-way figures).
  const auto& profile = *workloads::FindProfile("462.libquantum");
  const double sgx = RunDomainBasedExperiment(profile, core::TechniqueKind::kSgx,
                                              DomainScenario::kSyscall, Tiny());
  const double mpk = RunDomainBasedExperiment(profile, core::TechniqueKind::kMpk,
                                              DomainScenario::kSyscall, Tiny());
  EXPECT_GT(sgx, mpk);
}

}  // namespace
}  // namespace memsentry::eval

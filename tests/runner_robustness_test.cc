// End-to-end robustness tests for tools/bench_runner: a hanging benchmark
// binary is timed out (SIGTERM, then SIGKILL) and classified distinctly from
// a crash, a SIGSEGV binary is retried once, a binary that dies after
// writing its report has the report salvaged, and a healthy binary's metrics
// survive into the merged document regardless of the carnage around it. The
// suite binaries are stand-in shell scripts, so the scenarios are exact and
// fast.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/base/json.h"

#if defined(MEMSENTRY_BENCH_RUNNER) && !defined(_WIN32)

#include <csignal>
#include <sys/stat.h>
#include <sys/wait.h>

namespace memsentry {
namespace {

void WriteScript(const std::string& path, const std::string& body) {
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "#!/bin/sh\n" << body;
  }
  ASSERT_EQ(::chmod(path.c_str(), 0755), 0);
}

// A stand-in benchmark that writes a one-metric report to its --json= path.
std::string ReportingScript(const std::string& metric) {
  return "out=\"\"\n"
         "for a in \"$@\"; do case \"$a\" in --json=*) out=\"${a#--json=}\";; esac; done\n"
         "printf '{\"schema\":1,\"wall_seconds\":0.01,\"metrics\":{\"" +
         metric + "\":{\"value\":1,\"kind\":\"fidelity\",\"tol\":0}}}' > \"$out\"\n";
}

struct RunnerRun {
  int exit_code = 0;
  json::Value merged;
};

RunnerRun RunSuite(const std::string& dir, const std::string& only,
                   const std::string& extra_flags) {
  RunnerRun run;
  const std::string out = dir + "/BENCH_RESULTS.json";
  const std::string command = std::string("\"") + MEMSENTRY_BENCH_RUNNER +
                              "\" --bench-dir=\"" + dir + "\" --only=" + only +
                              " --out=\"" + out + "\" --no-gate " + extra_flags +
                              " > \"" + dir + "/runner.log\" 2>&1";
  const int raw = std::system(command.c_str());
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  auto merged = json::ParseFile(out);
  EXPECT_TRUE(merged.ok()) << "runner must write a merged report even on failures";
  if (merged.ok()) {
    run.merged = std::move(merged).value();
  }
  return run;
}

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::system(("rm -rf \"" + dir + "\" && mkdir -p \"" + dir + "\"").c_str());
  return dir;
}

TEST(BenchRunnerRobustness, SurvivesHangCrashAndSalvage) {
  const std::string dir = FreshDir("runner_robustness");
  // Names must be real suite entries: the runner rejects unknown --only.
  WriteScript(dir + "/table1_defenses", "exec sleep 600\n");       // hangs
  WriteScript(dir + "/table2_applicability", "kill -SEGV $$\n");   // crashes
  WriteScript(dir + "/table3_limits", ReportingScript("fake/survivor"));
  WriteScript(dir + "/table4_micro",
              ReportingScript("fake/salvaged") + "kill -SEGV $$\n");  // dies after report

  const RunnerRun run = RunSuite(
      dir, "table1_defenses,table2_applicability,table3_limits,table4_micro", "--timeout=2");
  EXPECT_NE(run.exit_code, 0);  // the suite had failures and says so

  const json::Value* binaries = run.merged.Find("binaries");
  ASSERT_NE(binaries, nullptr);

  const json::Value* hung = binaries->Find("table1_defenses");
  ASSERT_NE(hung, nullptr);
  EXPECT_TRUE(hung->BoolOr("timed_out", false));
  EXPECT_EQ(hung->NumberOr("retries", -1), 0);  // timeouts are never retried

  const json::Value* crashed = binaries->Find("table2_applicability");
  ASSERT_NE(crashed, nullptr);
  EXPECT_FALSE(crashed->BoolOr("timed_out", true));
  EXPECT_EQ(crashed->NumberOr("signal", 0), SIGSEGV);
  EXPECT_EQ(crashed->NumberOr("retries", 0), 1);  // one retry, then give up

  const json::Value* healthy = binaries->Find("table3_limits");
  ASSERT_NE(healthy, nullptr);
  EXPECT_EQ(healthy->NumberOr("exit", -1), 0);
  EXPECT_FALSE(healthy->BoolOr("timed_out", true));

  const json::Value* salvaged = binaries->Find("table4_micro");
  ASSERT_NE(salvaged, nullptr);
  EXPECT_TRUE(salvaged->BoolOr("salvaged", false));

  // The healthy binary's metrics and the salvaged report both made it into
  // the merged document.
  const json::Value* metrics = run.merged.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->Find("fake/survivor"), nullptr);
  EXPECT_NE(metrics->Find("fake/salvaged"), nullptr);
}

TEST(BenchRunnerRobustness, CleanSuiteReportsCleanHeader) {
  const std::string dir = FreshDir("runner_clean");
  WriteScript(dir + "/table1_defenses", ReportingScript("fake/clean"));
  const RunnerRun run = RunSuite(dir, "table1_defenses", "--timeout=30");
  EXPECT_EQ(run.exit_code, 0);
  const json::Value* info = run.merged.Find("binaries")->Find("table1_defenses");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->NumberOr("exit", -1), 0);
  EXPECT_FALSE(info->BoolOr("timed_out", true));
  EXPECT_EQ(info->NumberOr("retries", -1), 0);
  EXPECT_EQ(run.merged.Find("metrics")->Find("fake/clean")->NumberOr("value", 0), 1);
}

}  // namespace
}  // namespace memsentry

#endif  // MEMSENTRY_BENCH_RUNNER && !_WIN32

// End-to-end robustness tests for tools/bench_runner: a hanging benchmark
// binary is timed out (SIGTERM, then SIGKILL) and classified distinctly from
// a crash, a SIGSEGV binary is retried once, a binary that dies after
// writing its report has the report salvaged, and a healthy binary's metrics
// survive into the merged document regardless of the carnage around it. The
// suite binaries are stand-in shell scripts, so the scenarios are exact and
// fast.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/base/json.h"

#if defined(MEMSENTRY_BENCH_RUNNER) && !defined(_WIN32)

#include <csignal>
#include <sys/stat.h>
#include <sys/wait.h>

namespace memsentry {
namespace {

void WriteScript(const std::string& path, const std::string& body) {
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "#!/bin/sh\n" << body;
  }
  ASSERT_EQ(::chmod(path.c_str(), 0755), 0);
}

// A stand-in benchmark that writes a one-metric report to its --json= path.
std::string ReportingScript(const std::string& metric) {
  return "out=\"\"\n"
         "for a in \"$@\"; do case \"$a\" in --json=*) out=\"${a#--json=}\";; esac; done\n"
         "printf '{\"schema\":1,\"wall_seconds\":0.01,\"metrics\":{\"" +
         metric + "\":{\"value\":1,\"kind\":\"fidelity\",\"tol\":0}}}' > \"$out\"\n";
}

struct RunnerRun {
  int exit_code = 0;
  json::Value merged;
};

RunnerRun RunSuite(const std::string& dir, const std::string& only,
                   const std::string& extra_flags) {
  RunnerRun run;
  const std::string out = dir + "/BENCH_RESULTS.json";
  // These scenarios exercise the forked-child machinery (timeouts, signal
  // retries, report salvage), so they pin --engine=fork: the default
  // in-process engine would run the registered workload bodies instead of
  // the stand-in scripts. tests/campaign_engine_test.cc covers inproc.
  const std::string command = std::string("\"") + MEMSENTRY_BENCH_RUNNER +
                              "\" --bench-dir=\"" + dir + "\" --only=" + only +
                              " --engine=fork --out=\"" + out + "\" --no-gate " + extra_flags +
                              " > \"" + dir + "/runner.log\" 2>&1";
  const int raw = std::system(command.c_str());
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  auto merged = json::ParseFile(out);
  EXPECT_TRUE(merged.ok()) << "runner must write a merged report even on failures";
  if (merged.ok()) {
    run.merged = std::move(merged).value();
  }
  return run;
}

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::system(("rm -rf \"" + dir + "\" && mkdir -p \"" + dir + "\"").c_str());
  return dir;
}

TEST(BenchRunnerRobustness, SurvivesHangCrashAndSalvage) {
  const std::string dir = FreshDir("runner_robustness");
  // Names must be real suite entries: the runner rejects unknown --only.
  WriteScript(dir + "/table1_defenses", "exec sleep 600\n");       // hangs
  WriteScript(dir + "/table2_applicability", "kill -SEGV $$\n");   // crashes
  WriteScript(dir + "/table3_limits", ReportingScript("fake/survivor"));
  WriteScript(dir + "/table4_micro",
              ReportingScript("fake/salvaged") + "kill -SEGV $$\n");  // dies after report

  const RunnerRun run = RunSuite(
      dir, "table1_defenses,table2_applicability,table3_limits,table4_micro", "--timeout=2");
  EXPECT_NE(run.exit_code, 0);  // the suite had failures and says so

  const json::Value* binaries = run.merged.Find("binaries");
  ASSERT_NE(binaries, nullptr);

  const json::Value* hung = binaries->Find("table1_defenses");
  ASSERT_NE(hung, nullptr);
  EXPECT_TRUE(hung->BoolOr("timed_out", false));
  EXPECT_EQ(hung->NumberOr("retries", -1), 0);  // timeouts are never retried

  const json::Value* crashed = binaries->Find("table2_applicability");
  ASSERT_NE(crashed, nullptr);
  EXPECT_FALSE(crashed->BoolOr("timed_out", true));
  EXPECT_EQ(crashed->NumberOr("signal", 0), SIGSEGV);
  EXPECT_EQ(crashed->NumberOr("retries", 0), 1);  // one retry, then give up

  const json::Value* healthy = binaries->Find("table3_limits");
  ASSERT_NE(healthy, nullptr);
  EXPECT_EQ(healthy->NumberOr("exit", -1), 0);
  EXPECT_FALSE(healthy->BoolOr("timed_out", true));

  const json::Value* salvaged = binaries->Find("table4_micro");
  ASSERT_NE(salvaged, nullptr);
  EXPECT_TRUE(salvaged->BoolOr("salvaged", false));

  // The healthy binary's metrics and the salvaged report both made it into
  // the merged document.
  const json::Value* metrics = run.merged.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->Find("fake/survivor"), nullptr);
  EXPECT_NE(metrics->Find("fake/salvaged"), nullptr);
}

// The write-ahead journal end to end: a suite with one healthy and one
// crashing binary leaves a journal; after the crasher is "fixed", --resume
// re-runs only it — the healthy binary's completion is taken from the
// journal (its invocation count stays at one) and marked as resumed.
TEST(BenchRunnerRobustness, JournalResumeSkipsCompletedBinaries) {
  const std::string dir = FreshDir("runner_resume");
  const std::string count = dir + "/invocations";
  WriteScript(dir + "/table3_limits",
              "echo run >> \"" + count + "\"\n" + ReportingScript("fake/healthy"));
  WriteScript(dir + "/table4_micro", "kill -SEGV $$\n");

  const RunnerRun first = RunSuite(dir, "table3_limits,table4_micro", "--timeout=30");
  EXPECT_NE(first.exit_code, 0);
  {
    std::ifstream journal(dir + "/BENCH_JOURNAL.jsonl");
    std::string header;
    ASSERT_TRUE(std::getline(journal, header));
    EXPECT_NE(header.find("\"journal\""), std::string::npos);
  }

  // Resuming under a different configuration must refuse to merge, loudly.
  const RunnerRun mismatched =
      RunSuite(dir, "table3_limits,table4_micro", "--timeout=30 --resume --instructions=123");
  EXPECT_EQ(mismatched.exit_code, 2);

  WriteScript(dir + "/table4_micro", ReportingScript("fake/fixed"));
  const RunnerRun second = RunSuite(dir, "table3_limits,table4_micro", "--timeout=30 --resume");
  EXPECT_EQ(second.exit_code, 0);

  // The healthy binary ran exactly once across both suite invocations.
  std::ifstream in(count);
  int lines = 0;
  for (std::string line; std::getline(in, line);) {
    ++lines;
  }
  EXPECT_EQ(lines, 1);

  const json::Value* healthy = second.merged.Find("binaries")->Find("table3_limits");
  ASSERT_NE(healthy, nullptr);
  EXPECT_TRUE(healthy->BoolOr("resumed", false));
  const json::Value* fixed = second.merged.Find("binaries")->Find("table4_micro");
  ASSERT_NE(fixed, nullptr);
  EXPECT_FALSE(fixed->BoolOr("resumed", false));  // re-ran, not journal-sourced
  EXPECT_NE(second.merged.Find("metrics")->Find("fake/healthy"), nullptr);
  EXPECT_NE(second.merged.Find("metrics")->Find("fake/fixed"), nullptr);
}

// Atomic report writes from the runner's perspective: a binary that dies
// leaving only a half-written temp file (the write-to-temp half of
// temp+rename) must not have that file salvaged as a report.
TEST(BenchRunnerRobustness, HalfWrittenTempFileIsNeverSalvaged) {
  const std::string dir = FreshDir("runner_tempfile");
  WriteScript(dir + "/table3_limits",
              "out=\"\"\n"
              "for a in \"$@\"; do case \"$a\" in --json=*) out=\"${a#--json=}\";; esac; done\n"
              "printf '{\"schema\":1,\"wall_seconds\":0.01,\"metrics\":{\"fake/teased\":'"
              " > \"$out.tmp\"\n"  // a torn prefix at the temp path, never renamed
              "kill -SEGV $$\n");

  const RunnerRun run = RunSuite(dir, "table3_limits", "--timeout=30");
  EXPECT_NE(run.exit_code, 0);
  const json::Value* info = run.merged.Find("binaries")->Find("table3_limits");
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->BoolOr("salvaged", true));
  EXPECT_EQ(run.merged.Find("metrics")->Find("fake/teased"), nullptr);
}

// Crash-retry reports write to stamped paths (<name>.retry1.json) so a
// retry can never overwrite the first attempt's output, and the merged
// header records every attempt's path.
TEST(BenchRunnerRobustness, RetriesWriteStampedReportPaths) {
  const std::string dir = FreshDir("runner_retry");
  const std::string marker = dir + "/already_crashed";
  WriteScript(dir + "/table3_limits",
              "if [ ! -f \"" + marker + "\" ]; then touch \"" + marker +
                  "\"; kill -SEGV $$; fi\n" + ReportingScript("fake/second_try"));

  const RunnerRun run = RunSuite(dir, "table3_limits", "--timeout=30");
  EXPECT_EQ(run.exit_code, 0);
  const json::Value* info = run.merged.Find("binaries")->Find("table3_limits");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->NumberOr("retries", 0), 1);
  const json::Value* reports = info->Find("reports");
  ASSERT_NE(reports, nullptr);
  ASSERT_EQ(reports->size(), 2u);
  const std::string retry_path = reports->items()[1].string_value();
  EXPECT_NE(retry_path.find("table3_limits.retry1.json"), std::string::npos);
  EXPECT_TRUE(json::ParseFile(retry_path).ok()) << retry_path;
  EXPECT_NE(run.merged.Find("metrics")->Find("fake/second_try"), nullptr);
}

TEST(BenchRunnerRobustness, CleanSuiteReportsCleanHeader) {
  const std::string dir = FreshDir("runner_clean");
  WriteScript(dir + "/table1_defenses", ReportingScript("fake/clean"));
  const RunnerRun run = RunSuite(dir, "table1_defenses", "--timeout=30");
  EXPECT_EQ(run.exit_code, 0);
  const json::Value* info = run.merged.Find("binaries")->Find("table1_defenses");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->NumberOr("exit", -1), 0);
  EXPECT_FALSE(info->BoolOr("timed_out", true));
  EXPECT_EQ(info->NumberOr("retries", -1), 0);
  EXPECT_EQ(run.merged.Find("metrics")->Find("fake/clean")->NumberOr("value", 0), 1);
}

}  // namespace
}  // namespace memsentry

#endif  // MEMSENTRY_BENCH_RUNNER && !_WIN32

// Pins the Mmu::ReadBytes/WriteBytes page-splitting invariant: a multi-page
// copy performs exactly one Access() — one translation, one pricing — per
// page touched, regardless of the total size. The cycle counts are compared
// bit-for-bit against a per-page Access() oracle run on a second, freshly
// built identical MMU, for crypt-sized transfers up to several pages, with
// the translation fast path on and off.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/fastpath.h"
#include "src/machine/cost_model.h"
#include "src/machine/mmu.h"
#include "src/machine/page_table.h"
#include "src/machine/phys_mem.h"

namespace memsentry::machine {
namespace {

class FastPathModeGuard {
 public:
  explicit FastPathModeGuard(base::FastPathMode mode) : saved_(base::GetFastPathMode()) {
    base::SetFastPathMode(mode);
  }
  ~FastPathModeGuard() { base::SetFastPathMode(saved_); }

 private:
  base::FastPathMode saved_;
};

constexpr VirtAddr kBase = 0x40000;
constexpr uint64_t kMappedPages = 8;

// A fresh MMU over its own physical memory with kMappedPages data pages at
// kBase. Two Rigs are bit-identical by construction, so any cycle divergence
// between them is caused by the access pattern, not the starting state.
struct Rig {
  PhysicalMemory pmem{1 << 16};
  CostModel cost;
  PageTable pt{&pmem};
  Mmu mmu{&pmem, &cost};
  Pkru pkru{};

  Rig() {
    mmu.SetPageTable(&pt);
    for (uint64_t p = 0; p < kMappedPages; ++p) {
      EXPECT_TRUE(pt.MapNew(kBase + p * kPageSize, PageFlags::Data()).ok());
    }
  }
};

// The oracle: the page-split loop ReadBytes/WriteBytes promise to make,
// spelled out as individual Access() calls.
Cycles OracleCycles(Rig& rig, VirtAddr va, uint64_t size, AccessType access,
                    uint64_t* accesses) {
  Cycles cycles = 0;
  *accesses = 0;
  while (size > 0) {
    const uint64_t chunk = std::min<uint64_t>(size, kPageSize - PageOffset(va));
    auto r = rig.mmu.Access(va, access, rig.pkru);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      cycles += r.value().cycles;
    }
    ++*accesses;
    va += chunk;
    size -= chunk;
  }
  return cycles;
}

// Crypt-region-shaped transfer sizes (the AES technique copies the whole
// safe region through these helpers on every domain switch), plus multi-page
// sizes and page-straddling offsets.
struct Copy {
  uint64_t offset;
  uint64_t size;
  uint64_t pages_touched;
};

const Copy kCopies[] = {
    {0, 16, 1},          {8, 64, 1},           {0, 1024, 1},
    {4000, 256, 2},      {0, 4096, 1},         {100, 4096, 2},
    {0, 3 * 4096, 3},    {4090, 4 * 4096, 5},  {0, 8 * 4096, 8},
};

void ExpectBytesMatchOracle(AccessType access) {
  for (const Copy& copy : kCopies) {
    SCOPED_TRACE("offset=" + std::to_string(copy.offset) +
                 " size=" + std::to_string(copy.size));
    Rig bytes_rig;
    Rig oracle_rig;
    const VirtAddr va = kBase + copy.offset;
    std::vector<uint8_t> buf(copy.size, 0xa5);
    Cycles bytes_cycles = 0;
    if (access == AccessType::kRead) {
      ASSERT_TRUE(bytes_rig.mmu.ReadBytes(va, buf.data(), buf.size(), bytes_rig.pkru,
                                          &bytes_cycles)
                      .ok());
    } else {
      ASSERT_TRUE(bytes_rig.mmu.WriteBytes(va, buf.data(), buf.size(), bytes_rig.pkru,
                                           &bytes_cycles)
                      .ok());
    }
    uint64_t oracle_accesses = 0;
    const Cycles oracle_cycles =
        OracleCycles(oracle_rig, va, copy.size, access, &oracle_accesses);
    // Bitwise: the helper must run the oracle's exact Access() sequence.
    EXPECT_EQ(bytes_cycles, oracle_cycles);
    EXPECT_EQ(oracle_accesses, copy.pages_touched);
    EXPECT_EQ(bytes_rig.mmu.stats().accesses, copy.pages_touched);
    EXPECT_EQ(bytes_rig.mmu.stats().accesses, oracle_rig.mmu.stats().accesses);
    EXPECT_EQ(bytes_rig.mmu.tlb().stats().hits, oracle_rig.mmu.tlb().stats().hits);
    EXPECT_EQ(bytes_rig.mmu.tlb().stats().misses, oracle_rig.mmu.tlb().stats().misses);
  }
}

TEST(MmuBytes, ReadBytesIsOneAccessPerPage) { ExpectBytesMatchOracle(AccessType::kRead); }

TEST(MmuBytes, WriteBytesIsOneAccessPerPage) { ExpectBytesMatchOracle(AccessType::kWrite); }

TEST(MmuBytes, ReadBytesIsOneAccessPerPageWithFastPathOff) {
  FastPathModeGuard guard(base::FastPathMode::kOff);
  ExpectBytesMatchOracle(AccessType::kRead);
}

TEST(MmuBytes, FastPathModesPriceCopiesIdentically) {
  // The same copy sequence on fresh identical MMUs with the grant cache off,
  // on and checking must cost bit-identical cycles and identical stats.
  auto run = [](base::FastPathMode mode) {
    FastPathModeGuard guard(mode);
    Rig rig;
    Cycles cycles = 0;
    std::vector<uint8_t> buf(6 * 4096, 0x5a);
    // Two passes so the second round hits the TLB (and, when enabled, the
    // grant cache) — the modeled price must not notice the difference.
    for (int round = 0; round < 2; ++round) {
      EXPECT_TRUE(
          rig.mmu.WriteBytes(kBase + 123, buf.data(), buf.size(), rig.pkru, &cycles).ok());
      EXPECT_TRUE(
          rig.mmu.ReadBytes(kBase + 123, buf.data(), buf.size(), rig.pkru, &cycles).ok());
    }
    struct Out {
      Cycles cycles;
      uint64_t accesses;
      uint64_t tlb_hits;
      uint64_t tlb_misses;
      uint64_t l1_hits;
      uint64_t dram;
    };
    return Out{cycles,
               rig.mmu.stats().accesses,
               rig.mmu.tlb().stats().hits,
               rig.mmu.tlb().stats().misses,
               rig.mmu.dcache().stats().l1_hits,
               rig.mmu.dcache().stats().dram_accesses};
  };
  const auto off = run(base::FastPathMode::kOff);
  const auto on = run(base::FastPathMode::kOn);
  const auto check = run(base::FastPathMode::kCheck);
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(off.cycles, check.cycles);
  EXPECT_EQ(off.accesses, on.accesses);
  EXPECT_EQ(off.tlb_hits, on.tlb_hits);
  EXPECT_EQ(off.tlb_misses, on.tlb_misses);
  EXPECT_EQ(off.l1_hits, on.l1_hits);
  EXPECT_EQ(off.dram, on.dram);
  EXPECT_EQ(off.accesses, check.accesses);
  EXPECT_EQ(off.tlb_hits, check.tlb_hits);
}

}  // namespace
}  // namespace memsentry::machine

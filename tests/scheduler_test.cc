// sim::Scheduler: deterministic per-ASID run queues, round-robin dispatch,
// preemption quanta, context-switch accounting and fairness.
#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace memsentry::sim {
namespace {

// Equal work, simultaneous arrivals: round-robin must hand every tenant the
// same busy time and complete everyone.
TEST(SchedulerFairnessTest, EqualWorkGetsEqualCycles) {
  SchedulerConfig config;
  config.quantum = 1'000;
  config.context_switch_cycles = 100;
  const int kTenants = 8;
  const int kRequests = 5;
  Scheduler scheduler(config, kTenants);
  for (int t = 0; t < kTenants; ++t) {
    for (int r = 0; r < kRequests; ++r) {
      scheduler.Submit(static_cast<uint16_t>(t), static_cast<uint64_t>(r), 0);
    }
  }
  auto completed = scheduler.Run([](uint16_t, uint64_t, int phase, bool* done) -> Cycles {
    if (phase == 2) {
      *done = true;
    }
    return 400;  // 3 phases x 400 = 1200 cycles per request
  });
  ASSERT_EQ(completed.size(), static_cast<size_t>(kTenants * kRequests));
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(scheduler.tenant_busy_cycles(static_cast<uint16_t>(t)), 3 * 400.0 * kRequests);
    EXPECT_EQ(scheduler.tenant_completed(static_cast<uint16_t>(t)),
              static_cast<uint64_t>(kRequests));
  }
  EXPECT_EQ(scheduler.stats().busy_cycles, 3 * 400.0 * kTenants * kRequests);
}

// A quantum smaller than a tenant's backlog forces preemption, and the
// preempted tenant goes to the back of the ready list: no tenant may finish
// its whole backlog before the others have started (no starvation).
TEST(SchedulerFairnessTest, PreemptionPreventsStarvation) {
  SchedulerConfig config;
  config.quantum = 1'000;
  config.context_switch_cycles = 50;
  const int kTenants = 4;
  const int kRequests = 10;
  Scheduler scheduler(config, kTenants);
  for (int t = 0; t < kTenants; ++t) {
    for (int r = 0; r < kRequests; ++r) {
      scheduler.Submit(static_cast<uint16_t>(t), static_cast<uint64_t>(r), 0);
    }
  }
  auto completed = scheduler.Run([](uint16_t, uint64_t, int, bool* done) -> Cycles {
    *done = true;  // single-phase requests, 600 cycles each
    return 600;
  });
  ASSERT_EQ(completed.size(), static_cast<size_t>(kTenants * kRequests));
  EXPECT_GT(scheduler.stats().preemptions, 0u);
  // With a 1000-cycle quantum a slice fits one 600-cycle request; by the
  // time any tenant completes its 3rd request, every tenant must have
  // completed at least one (round-robin interleaving).
  std::vector<int> seen(kTenants, 0);
  for (const CompletedRequest& request : completed) {
    ++seen[request.tenant];
    if (seen[request.tenant] == 3) {
      for (int t = 0; t < kTenants; ++t) {
        EXPECT_GE(seen[t], 1) << "tenant " << t << " starved";
      }
      break;
    }
  }
}

TEST(SchedulerTest, ContextSwitchAccounting) {
  SchedulerConfig config;
  config.quantum = 10'000;
  config.context_switch_cycles = 250;
  Scheduler scheduler(config, 2);
  scheduler.Submit(0, 0, 0);
  scheduler.Submit(1, 0, 0);
  std::vector<uint16_t> switches;
  scheduler.SetSwitchHook([&](uint16_t tenant) { switches.push_back(tenant); });
  auto completed = scheduler.Run([](uint16_t, uint64_t, int, bool* done) -> Cycles {
    *done = true;
    return 100;
  });
  ASSERT_EQ(completed.size(), 2u);
  // Idle -> tenant 0, tenant 0 -> tenant 1: two switches, both hooked.
  EXPECT_EQ(scheduler.stats().context_switches, 2u);
  EXPECT_EQ(scheduler.stats().switch_cycles, 2 * 250.0);
  ASSERT_EQ(switches.size(), 2u);
  EXPECT_EQ(switches[0], 0);
  EXPECT_EQ(switches[1], 1);
  // Total clock = 2 switches + 2 requests.
  EXPECT_EQ(scheduler.clock(), 2 * 250.0 + 2 * 100.0);
}

// Consecutive slices of the same tenant must not pay the switch cost.
TEST(SchedulerTest, NoSwitchCostWithinOneTenant) {
  SchedulerConfig config;
  config.quantum = 100;  // every request overruns the quantum
  config.context_switch_cycles = 1'000;
  Scheduler scheduler(config, 1);
  for (int r = 0; r < 5; ++r) {
    scheduler.Submit(0, static_cast<uint64_t>(r), 0);
  }
  auto completed = scheduler.Run([](uint16_t, uint64_t, int, bool* done) -> Cycles {
    *done = true;
    return 500;
  });
  ASSERT_EQ(completed.size(), 5u);
  EXPECT_EQ(scheduler.stats().context_switches, 1u);  // only idle -> tenant 0
  EXPECT_GT(scheduler.stats().preemptions, 0u);
  EXPECT_EQ(scheduler.clock(), 1'000.0 + 5 * 500.0);
}

TEST(SchedulerTest, IdleJumpsToNextArrival) {
  SchedulerConfig config;
  config.context_switch_cycles = 0;
  Scheduler scheduler(config, 1);
  scheduler.Submit(0, 0, 0);
  scheduler.Submit(0, 1, 1'000'000);  // long idle gap
  auto completed = scheduler.Run([](uint16_t, uint64_t, int, bool* done) -> Cycles {
    *done = true;
    return 10;
  });
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_GE(scheduler.stats().idle_jumps, 1u);
  EXPECT_EQ(completed[1].arrival, 1'000'000.0);
  EXPECT_EQ(completed[1].completion, 1'000'010.0);  // ran immediately on arrival
}

// Latency includes queueing: simultaneous arrivals to one tenant complete in
// FIFO order with strictly increasing completion times.
TEST(SchedulerTest, FifoWithinTenant) {
  SchedulerConfig config;
  config.context_switch_cycles = 0;
  Scheduler scheduler(config, 1);
  for (int r = 0; r < 4; ++r) {
    scheduler.Submit(0, static_cast<uint64_t>(r), 0);
  }
  auto completed = scheduler.Run([](uint16_t, uint64_t, int, bool* done) -> Cycles {
    *done = true;
    return 100;
  });
  ASSERT_EQ(completed.size(), 4u);
  for (size_t i = 0; i < completed.size(); ++i) {
    EXPECT_EQ(completed[i].seq, i);
    EXPECT_EQ(completed[i].completion, 100.0 * static_cast<double>(i + 1));
  }
}

// Bit-for-bit repeatability: two identical schedules produce identical
// completion sequences and stats.
TEST(SchedulerTest, DeterministicAcrossRuns) {
  auto run = [] {
    SchedulerConfig config;
    config.quantum = 700;
    config.context_switch_cycles = 90;
    Scheduler scheduler(config, 5);
    for (int t = 0; t < 5; ++t) {
      for (int r = 0; r < 7; ++r) {
        scheduler.Submit(static_cast<uint16_t>(t), static_cast<uint64_t>(r),
                         static_cast<Cycles>(r * 331 + t * 17));
      }
    }
    return scheduler.Run([](uint16_t tenant, uint64_t seq, int phase, bool* done) -> Cycles {
      if (phase == 1) {
        *done = true;
      }
      return static_cast<Cycles>(50 + 13 * tenant + 7 * (seq % 3));
    });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].completion, b[i].completion);
  }
}

}  // namespace
}  // namespace memsentry::sim

#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/sim/executor.h"
#include "src/sim/process.h"

namespace memsentry::sim {
namespace {

using ir::Builder;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using machine::Gpr;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : process_(&machine_) {
    EXPECT_TRUE(process_.SetupStack().ok());
    EXPECT_TRUE(process_.MapRange(kWorkingSetBase, 4, machine::PageFlags::Data()).ok());
  }
  RunResult Run(const Module& module, RunConfig config = {}) {
    Executor executor(&process_, &module);
    return executor.Run(config);
  }
  Machine machine_;
  Process process_;
};

TEST_F(ExecutorTest, CountedLoopExecutesExactly) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR13, 10);
  const int loop = b.NewBlock();
  const int exit = b.NewBlock();
  b.Jmp(loop);
  b.SetInsertPoint(0, loop);
  b.AddImm(Gpr::kRbx, 3);
  b.AddImm(Gpr::kR13, -1);
  b.CondBr(loop);
  b.SetInsertPoint(0, exit);
  b.Halt();
  auto result = Run(m);
  EXPECT_TRUE(result.halted);
  EXPECT_FALSE(result.fault.has_value());
  // setup(2) + 10 * (3 loop instrs) + halt.
  EXPECT_EQ(result.instructions, 2u + 30u + 1u);
  EXPECT_EQ(process_.regs()[Gpr::kRbx], 30u);
  EXPECT_GT(result.cycles, 0.0);
}

TEST_F(ExecutorTest, LoadStoreRoundTrip) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR9, kWorkingSetBase + 64);
  b.MovImm(Gpr::kRbx, 0xfeedULL);
  b.Store(Gpr::kR9, Gpr::kRbx);
  b.Load(Gpr::kRcx, Gpr::kR9);
  b.Halt();
  auto result = Run(m);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(process_.regs()[Gpr::kRcx], 0xfeedULL);
  EXPECT_EQ(result.loads, 1u);
  EXPECT_EQ(result.stores, 1u);
}

TEST_F(ExecutorTest, UnmappedAccessFaults) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR9, 0x500000000000ULL);
  b.Load(Gpr::kRbx, Gpr::kR9);
  b.Halt();
  auto result = Run(m);
  EXPECT_FALSE(result.halted);
  ASSERT_TRUE(result.fault.has_value());
  EXPECT_EQ(result.fault->type, machine::FaultType::kPageNotPresent);
}

TEST_F(ExecutorTest, CallAndReturn) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Call(1);
  b.AddImm(Gpr::kRbx, 1);
  b.Halt();
  b.CreateFunction("callee");
  b.MovImm(Gpr::kRbx, 100);
  b.Ret();
  m.entry = 0;
  auto result = Run(m);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.calls, 1u);
  EXPECT_EQ(result.rets, 1u);
  EXPECT_EQ(process_.regs()[Gpr::kRbx], 101u);
}

TEST_F(ExecutorTest, IndirectCallThroughRegister) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR10, 1);
  b.IndirectCall(Gpr::kR10, 0);
  b.Halt();
  b.CreateFunction("target");
  b.MovImm(Gpr::kRbx, 7);
  b.Ret();
  auto result = Run(m);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.indirect_calls, 1u);
  EXPECT_EQ(process_.regs()[Gpr::kRbx], 7u);
}

TEST_F(ExecutorTest, IndirectCallOutOfRangeFaults) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR10, 55);
  b.IndirectCall(Gpr::kR10, 0);
  b.Halt();
  auto result = Run(m);
  ASSERT_TRUE(result.fault.has_value());
  EXPECT_EQ(result.fault->type, machine::FaultType::kGeneralProtection);
}

TEST_F(ExecutorTest, CorruptedReturnAddressFaults) {
  // main calls callee; callee overwrites its own in-memory return address
  // with garbage before returning (the classic stack smash).
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Call(1);
  b.Halt();
  b.CreateFunction("callee");
  b.MovImm(Gpr::kRbx, 0x4141414141414141ULL);
  b.Store(Gpr::kRsp, Gpr::kRbx);  // rsp points at the pushed RA inside callee
  b.Ret();
  auto result = Run(m);
  EXPECT_FALSE(result.halted);
  ASSERT_TRUE(result.fault.has_value());
  EXPECT_EQ(result.fault->type, machine::FaultType::kGeneralProtection);
}

TEST_F(ExecutorTest, SyscallDispatchesToHandler) {
  process_.SetSyscallHandler([](uint64_t nr, uint64_t a0, uint64_t) { return nr + a0 + 1; });
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRdi, 10);
  b.Syscall(31);
  b.Halt();
  auto result = Run(m);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.syscalls, 1u);
  EXPECT_EQ(process_.regs()[Gpr::kRax], 42u);
}

TEST_F(ExecutorTest, TrapStopsExecution) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Emit(Instr{.op = Opcode::kTrap});
  b.Halt();
  auto result = Run(m);
  EXPECT_TRUE(result.trapped);
  EXPECT_FALSE(result.halted);
}

TEST_F(ExecutorTest, TrapIfRespectsZeroFlag) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRbx, 5);
  b.AddImm(Gpr::kRbx, -5);             // zero_flag set
  b.Emit(Instr{.op = Opcode::kTrapIf});  // must NOT trap
  b.AddImm(Gpr::kRbx, 1);              // zero_flag clear
  b.Emit(Instr{.op = Opcode::kTrapIf});  // must trap
  b.Halt();
  auto result = Run(m);
  EXPECT_TRUE(result.trapped);
  EXPECT_EQ(result.instructions, 5u);
}

TEST_F(ExecutorTest, InstructionLimitRespected) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  const int loop = b.NewBlock();
  b.Jmp(loop);
  b.SetInsertPoint(0, loop);
  b.AddImm(Gpr::kRbx, 1);
  b.Jmp(loop);  // infinite
  auto result = Run(m, RunConfig{.max_instructions = 1000});
  EXPECT_TRUE(result.hit_instruction_limit);
  EXPECT_EQ(result.instructions, 1000u);
}

TEST_F(ExecutorTest, WrpkruChangesPkruAndCosts) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Emit(Instr{.op = Opcode::kWrpkru, .imm = 0xc});
  b.Halt();
  auto result = Run(m);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(process_.regs().pkru.value, 0xcu);
  EXPECT_EQ(result.domain_switches, 1u);
  EXPECT_GE(result.cycles, machine_.cost.wrpkru);
}

TEST_F(ExecutorTest, BndcuFaultsAboveBound) {
  process_.regs().bnd[0] = machine::BoundRegister{0, kPartitionSplit - 1};
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR9, kPartitionSplit + 0x1000);
  b.Emit(Instr{.op = Opcode::kBndcu, .src = Gpr::kR9, .imm = 0});
  b.Halt();
  auto result = Run(m);
  ASSERT_TRUE(result.fault.has_value());
  EXPECT_EQ(result.fault->type, machine::FaultType::kBoundRange);
}

TEST_F(ExecutorTest, VmFuncWithoutDuneFaults) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Emit(Instr{.op = Opcode::kVmFunc, .imm = 0});
  b.Halt();
  auto result = Run(m);
  ASSERT_TRUE(result.fault.has_value());
  EXPECT_EQ(result.fault->type, machine::FaultType::kGeneralProtection);
}

TEST_F(ExecutorTest, DynamicProfilingRecordsSafeAccesses) {
  process_.AddSafeRegion("secret", kWorkingSetBase + kPageSize, 64);
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR9, kWorkingSetBase + kPageSize);  // inside the safe region
  b.Load(Gpr::kRbx, Gpr::kR9);
  b.MovImm(Gpr::kR9, kWorkingSetBase);  // outside
  b.Load(Gpr::kRbx, Gpr::kR9);
  b.Halt();
  auto result = Run(m, RunConfig{.record_safe_accesses = true});
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.safe_access_refs.size(), 1u);
  EXPECT_TRUE(result.safe_access_refs.count(PackRef(0, 0, 1)) == 1);
}

TEST_F(ExecutorTest, VecOpPenalizedOnlyWhenYmmReserved) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.VecOp(3);
  b.Halt();
  auto plain = Run(m);
  process_.SetYmmReserved(true);
  auto reserved = Run(m);
  EXPECT_GT(reserved.cycles, plain.cycles);
}

TEST_F(ExecutorTest, MemoryBoundCodeCostsMoreThanCacheHot) {
  // Two pointer-walk loops over 8 KiB vs 16 MiB working sets.
  auto make = [&](uint64_t ws_bytes) {
    Module m;
    Builder b(&m);
    b.CreateFunction("main");
    b.MovImm(Gpr::kR13, 20000);
    b.MovImm(Gpr::kR9, kWorkingSetBase);
    const int loop = b.NewBlock();
    const int exit = b.NewBlock();
    b.Jmp(loop);
    b.SetInsertPoint(0, loop);
    b.AddImm(Gpr::kR9, 64);
    b.AndImm(Gpr::kR9, kWorkingSetBase | (ws_bytes - 1));
    b.Load(Gpr::kRbx, Gpr::kR9);
    b.AddImm(Gpr::kR13, -1);
    b.CondBr(loop);
    b.SetInsertPoint(0, exit);
    b.Halt();
    return m;
  };
  ASSERT_TRUE(process_.MapRange(kWorkingSetBase + 4 * kPageSize, 4096 - 4,
                                machine::PageFlags::Data())
                  .ok());  // extend to 16 MiB
  auto hot = Run(make(8 * 1024));
  auto cold = Run(make(16 * 1024 * 1024));
  EXPECT_TRUE(hot.halted);
  EXPECT_TRUE(cold.halted);
  EXPECT_GT(cold.cycles, hot.cycles * 1.5);
}

}  // namespace
}  // namespace memsentry::sim

// Full-pipeline integration: every isolation technique crossed with every
// defense scenario over a real synthesized workload — synthesize, apply the
// defense pass, Protect(), execute to completion, and check the books
// (domain switches present where expected, instrumentation attributed,
// overhead sane, no faults).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/core/memsentry.h"
#include "src/defenses/event_annotator.h"
#include "src/defenses/shadow_stack.h"
#include "src/eval/figures.h"
#include "src/sim/executor.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

using core::TechniqueKind;
using eval::DomainScenario;

using Combo = std::tuple<TechniqueKind, DomainScenario>;

class DomainIntegrationTest : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DomainIntegrationTest,
    ::testing::Combine(::testing::Values(TechniqueKind::kMpk, TechniqueKind::kVmfunc,
                                         TechniqueKind::kCrypt, TechniqueKind::kSgx,
                                         TechniqueKind::kMprotect),
                       ::testing::Values(DomainScenario::kCallRet,
                                         DomainScenario::kIndirectBranch,
                                         DomainScenario::kSyscall)),
    [](const auto& info) {
      std::string name = core::TechniqueKindName(std::get<0>(info.param));
      name += "_";
      switch (std::get<1>(info.param)) {
        case DomainScenario::kCallRet:
          name += "callret";
          break;
        case DomainScenario::kIndirectBranch:
          name += "indirect";
          break;
        case DomainScenario::kSyscall:
          name += "syscall";
          break;
      }
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST_P(DomainIntegrationTest, ProtectedWorkloadCompletesWithSwitches) {
  const auto [kind, scenario] = GetParam();
  const auto& profile = *workloads::FindProfile("445.gobmk");

  sim::Machine machine;
  sim::Process process(&machine);
  if (kind == TechniqueKind::kVmfunc) {
    ASSERT_TRUE(process.EnableDune().ok());
  }
  ASSERT_TRUE(workloads::PrepareWorkloadProcess(process, profile).ok());
  core::MemSentryConfig config;
  config.technique = kind;
  core::MemSentry ms(&process, config);
  auto region =
      ms.allocator().Alloc("metadata", kind == TechniqueKind::kCrypt ? 16 : 4096);
  ASSERT_TRUE(region.ok());

  workloads::SynthOptions synth;
  synth.target_instructions = 50'000;
  ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);

  switch (scenario) {
    case DomainScenario::kCallRet: {
      defenses::ShadowStackPass pass(region.value()->base);
      ASSERT_TRUE(pass.Run(module).ok());
      break;
    }
    case DomainScenario::kIndirectBranch: {
      defenses::EventAnnotatorPass pass(defenses::EventKind::kIndirectBranch,
                                        region.value()->base);
      ASSERT_TRUE(pass.Run(module).ok());
      break;
    }
    case DomainScenario::kSyscall: {
      defenses::EventAnnotatorPass pass(defenses::EventKind::kSyscall, region.value()->base);
      ASSERT_TRUE(pass.Run(module).ok());
      break;
    }
  }
  ASSERT_TRUE(ms.Protect(module).ok());

  sim::Executor executor(&process, &module);
  auto result = executor.Run();
  ASSERT_TRUE(result.halted) << (result.fault ? result.fault->ToString() : "no fault");
  EXPECT_FALSE(result.trapped);
  EXPECT_GT(result.domain_switches, 0u);
  EXPECT_GT(result.instrumentation_instrs, 0u);
  EXPECT_GT(result.instrumentation_cycles, 0.0);
  EXPECT_LT(result.instrumentation_cycles, result.cycles);

  // The attacker still cannot touch the region after the run.
  auto leak = ms.technique().AttackerRead(process, region.value()->base);
  if (leak.ok()) {
    // crypt: readable ciphertext is acceptable; anything else must fault.
    EXPECT_EQ(kind, TechniqueKind::kCrypt);
  }
}

class AddressIntegrationTest
    : public ::testing::TestWithParam<std::tuple<TechniqueKind, core::ProtectMode>> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AddressIntegrationTest,
    ::testing::Combine(::testing::Values(TechniqueKind::kSfi, TechniqueKind::kMpx),
                       ::testing::Values(core::ProtectMode::kWriteOnly,
                                         core::ProtectMode::kReadOnly,
                                         core::ProtectMode::kReadWrite)),
    [](const auto& info) {
      std::string name = core::TechniqueKindName(std::get<0>(info.param));
      switch (std::get<1>(info.param)) {
        case core::ProtectMode::kWriteOnly:
          name += "_w";
          break;
        case core::ProtectMode::kReadOnly:
          name += "_r";
          break;
        case core::ProtectMode::kReadWrite:
          name += "_rw";
          break;
      }
      return name;
    });

TEST_P(AddressIntegrationTest, InstrumentedWorkloadCompletesAndConfines) {
  const auto [kind, mode] = GetParam();
  const auto& profile = *workloads::FindProfile("458.sjeng");
  eval::ExperimentOptions options;
  options.target_instructions = 50'000;
  const double normalized = eval::RunAddressBasedExperiment(profile, kind, mode, options);
  ASSERT_GT(normalized, 0.0) << "pipeline failed";
  EXPECT_GE(normalized, 1.0);
  EXPECT_LT(normalized, 1.6);
  // -w must cost less than -rw for the same technique.
  if (mode == core::ProtectMode::kReadWrite) {
    const double write_only = eval::RunAddressBasedExperiment(
        profile, kind, core::ProtectMode::kWriteOnly, options);
    EXPECT_LT(write_only, normalized);
  }
}

}  // namespace
}  // namespace memsentry

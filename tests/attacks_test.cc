#include <gtest/gtest.h>

#include "src/attacks/harness.h"
#include "src/attacks/primitives.h"
#include "src/attacks/strategies.h"
#include "src/core/memsentry.h"

namespace memsentry::attacks {
namespace {

using core::TechniqueKind;

TEST(AttackMatrixTest, InformationHidingFallsDeterministicHolds) {
  auto reports = RunAttackMatrix();
  ASSERT_EQ(reports.size(), static_cast<size_t>(core::kNumTechniques));
  for (const auto& report : reports) {
    SCOPED_TRACE(core::TechniqueKindName(report.technique));
    if (report.technique == TechniqueKind::kInfoHide) {
      // The paper's Section 1: the hidden region is found and fully owned.
      EXPECT_TRUE(report.region_located);
      EXPECT_EQ(report.read_outcome, Outcome::kLeaked);
      EXPECT_EQ(report.write_outcome, Outcome::kCorrupted);
      EXPECT_GT(report.locate_probes, 0u);
      EXPECT_LT(report.locate_probes, 256u);  // a few dozen oracle queries
    } else {
      // Deterministic isolation: the address is known, the data still safe.
      EXPECT_NE(report.read_outcome, Outcome::kLeaked);
      EXPECT_NE(report.write_outcome, Outcome::kCorrupted);
    }
  }
}

TEST(AttackMatrixTest, DetectionVsPreventionSplitsAsInPaper) {
  auto reports = RunAttackMatrix();
  auto find = [&](TechniqueKind k) -> const AttackReport& {
    for (const auto& r : reports) {
      if (r.technique == k) {
        return r;
      }
    }
    static AttackReport dummy;
    return dummy;
  };
  // MPX deterministically *detects* (Section 6.3); SFI only prevents.
  EXPECT_EQ(find(TechniqueKind::kMpx).read_outcome, Outcome::kDetected);
  EXPECT_EQ(find(TechniqueKind::kSfi).read_outcome, Outcome::kPrevented);
  EXPECT_EQ(find(TechniqueKind::kMpk).read_outcome, Outcome::kDetected);
  EXPECT_EQ(find(TechniqueKind::kVmfunc).read_outcome, Outcome::kDetected);
  EXPECT_EQ(find(TechniqueKind::kSgx).read_outcome, Outcome::kDetected);
  EXPECT_EQ(find(TechniqueKind::kMprotect).read_outcome, Outcome::kDetected);
  // crypt leaks only ciphertext.
  EXPECT_EQ(find(TechniqueKind::kCrypt).read_outcome, Outcome::kPrevented);
}

TEST(AllocationOracleTest, PinpointsHiddenRegionInLogProbes) {
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  core::SafeRegionAllocator allocator(&process, TechniqueKind::kInfoHide, /*seed=*/77);
  auto region = allocator.Alloc("hidden", 8 * kPageSize);
  ASSERT_TRUE(region.ok());

  auto located = AllocationOracleAttack(process, 8);
  ASSERT_TRUE(located.found);
  EXPECT_EQ(located.base, region.value()->base);
  EXPECT_LT(located.probes, 128u);  // ~2 binary searches over 2^34 pages
}

TEST(AllocationOracleTest, WorksAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Machine machine;
    sim::Process process(&machine);
    core::SafeRegionAllocator allocator(&process, TechniqueKind::kInfoHide, seed);
    auto region = allocator.Alloc("hidden", 4 * kPageSize);
    ASSERT_TRUE(region.ok());
    auto located = AllocationOracleAttack(process, 4);
    ASSERT_TRUE(located.found) << "seed " << seed;
    EXPECT_EQ(located.base, region.value()->base) << "seed " << seed;
  }
}

TEST(CrashResistantScanTest, FindsLargeRegionWithCoarseStride) {
  // CPI-style huge reservation: a 4 GiB hidden region is findable by a scan
  // with 1 GiB stride in a few thousand probes.
  sim::Machine machine;
  sim::Process process(&machine);
  core::SafeRegionAllocator allocator(&process, TechniqueKind::kInfoHide, /*seed=*/5);
  const uint64_t kRegionBytes = uint64_t{4} << 30;
  auto region = allocator.Alloc("cpi-region", kRegionBytes);
  ASSERT_TRUE(region.ok());
  auto technique = core::CreateTechnique(TechniqueKind::kInfoHide);
  ArbitraryRw rw(&process, technique.get());
  auto located = CrashResistantScan(rw, sim::kStackTop, kAddressSpaceEnd,
                                    /*stride=*/uint64_t{1} << 30,
                                    /*probe_budget=*/1 << 20);
  ASSERT_TRUE(located.found);
  EXPECT_TRUE(region.value()->Contains(located.base));
}

TEST(CrashResistantScanTest, SmallRegionDefeatsNaiveScanBudget) {
  // A single 4 KiB region in 80 TiB: the same scan budget finds nothing —
  // which is exactly why thread spraying exists.
  sim::Machine machine;
  sim::Process process(&machine);
  core::SafeRegionAllocator allocator(&process, TechniqueKind::kInfoHide, /*seed=*/6);
  auto region = allocator.Alloc("tiny", kPageSize);
  ASSERT_TRUE(region.ok());
  auto technique = core::CreateTechnique(TechniqueKind::kInfoHide);
  ArbitraryRw rw(&process, technique.get());
  auto located = CrashResistantScan(rw, sim::kStackTop, kAddressSpaceEnd,
                                    /*stride=*/uint64_t{1} << 30, /*probe_budget=*/100000);
  EXPECT_FALSE(located.found);
}

TEST(ThreadSprayingTest, SprayingMakesScanningTractable) {
  sim::Machine machine;
  sim::Process process(&machine);
  core::SafeRegionAllocator allocator(&process, TechniqueKind::kInfoHide, /*seed=*/9);
  const uint64_t kRegionBytes = 256 * 1024;
  auto region = allocator.Alloc("original", kRegionBytes);
  ASSERT_TRUE(region.ok());
  auto technique = core::CreateTechnique(TechniqueKind::kInfoHide);
  ArbitraryRw rw(&process, technique.get());
  auto located = ThreadSprayingAttack(process, rw, allocator, kRegionBytes,
                                      /*spray_count=*/512, /*probe_budget=*/3'000'000);
  ASSERT_TRUE(located.found);
  EXPECT_TRUE(process.InSafeRegion(located.base));
}

TEST(PrimitivesTest, ProbeSurvivesFaults) {
  sim::Machine machine;
  sim::Process process(&machine);
  auto technique = core::CreateTechnique(TechniqueKind::kInfoHide);
  ArbitraryRw rw(&process, technique.get());
  auto probe = rw.Probe(0x123456000ULL);  // unmapped
  EXPECT_FALSE(probe.mapped_and_accessible);
  // ...and the attacker is still alive to probe again.
  ASSERT_TRUE(process.MapRange(0x123456000ULL, 1, machine::PageFlags::Data()).ok());
  ASSERT_TRUE(process.Poke64(0x123456000ULL, 7).ok());
  probe = rw.Probe(0x123456000ULL);
  EXPECT_TRUE(probe.mapped_and_accessible);
  EXPECT_EQ(probe.value, 7u);
}

TEST(OutcomeTest, NamesAreStable) {
  EXPECT_STREQ(OutcomeName(Outcome::kLeaked), "LEAKED");
  EXPECT_STREQ(OutcomeName(Outcome::kDetected), "detected");
  EXPECT_STREQ(OutcomeName(Outcome::kNotFound), "not-located");
}

}  // namespace
}  // namespace memsentry::attacks

// The technique advisor encodes paper Section 6.3; these tests pin its
// decision boundaries.
#include <gtest/gtest.h>

#include "src/core/advisor.h"

namespace memsentry::core {
namespace {

ScenarioSpec Base() {
  ScenarioSpec spec;
  spec.cpu_year = 2017;
  spec.hypervisor_ok = true;
  spec.mpk_available = false;
  return spec;
}

TEST(AdvisorTest, DenseSwitchesFavorAddressBased) {
  ScenarioSpec spec = Base();
  spec.point = InstrumentationPoint::kCallRet;
  spec.events_per_kinstr = 25;
  const Recommendation rec = Advise(spec);
  EXPECT_EQ(rec.primary, TechniqueKind::kMpx);
  ASSERT_FALSE(rec.alternatives.empty());
  EXPECT_EQ(rec.alternatives[0], TechniqueKind::kSfi);
}

TEST(AdvisorTest, OldCpuFallsBackToSfi) {
  ScenarioSpec spec = Base();
  spec.events_per_kinstr = 25;
  spec.cpu_year = 2012;  // pre-Skylake: no MPX
  EXPECT_EQ(Advise(spec).primary, TechniqueKind::kSfi);
}

TEST(AdvisorTest, ManyPartitionsRuleOutMpx) {
  ScenarioSpec spec = Base();
  spec.events_per_kinstr = 25;
  spec.domains_needed = 6;  // more than 4 bound registers
  EXPECT_EQ(Advise(spec).primary, TechniqueKind::kSfi);
}

TEST(AdvisorTest, SparseEventsWithMpkPickMpk) {
  ScenarioSpec spec = Base();
  spec.events_per_kinstr = 0.1;
  spec.mpk_available = true;
  EXPECT_EQ(Advise(spec).primary, TechniqueKind::kMpk);
}

TEST(AdvisorTest, TinyRegionPicksCrypt) {
  ScenarioSpec spec = Base();
  spec.events_per_kinstr = 0.1;
  spec.region_bytes = 16;
  EXPECT_EQ(Advise(spec).primary, TechniqueKind::kCrypt);
}

TEST(AdvisorTest, LargerRegionPicksVmfunc) {
  ScenarioSpec spec = Base();
  spec.events_per_kinstr = 0.1;
  spec.region_bytes = 4096;
  EXPECT_EQ(Advise(spec).primary, TechniqueKind::kVmfunc);
}

TEST(AdvisorTest, NoHypervisorForcesCrypt) {
  ScenarioSpec spec = Base();
  spec.events_per_kinstr = 0.1;
  spec.region_bytes = 4096;
  spec.hypervisor_ok = false;
  EXPECT_EQ(Advise(spec).primary, TechniqueKind::kCrypt);
}

TEST(AdvisorTest, PreHaswellForcesCrypt) {
  ScenarioSpec spec = Base();
  spec.events_per_kinstr = 0.1;
  spec.region_bytes = 4096;
  spec.cpu_year = 2012;  // pre-Haswell: no VMFUNC; AES-NI since 2010
  EXPECT_EQ(Advise(spec).primary, TechniqueKind::kCrypt);
}

TEST(AdvisorTest, NeverRecommendsSgxMprotectOrHiding) {
  // Sweep a grid of scenarios: the losers of Section 6.3 never surface.
  for (double events : {0.05, 1.0, 10.0, 50.0}) {
    for (uint64_t bytes : {16ULL, 4096ULL, 1048576ULL}) {
      for (int year : {2010, 2013, 2015, 2017}) {
        for (bool mpk : {false, true}) {
          ScenarioSpec spec = Base();
          spec.events_per_kinstr = events;
          spec.region_bytes = bytes;
          spec.cpu_year = year;
          spec.mpk_available = mpk;
          const Recommendation rec = Advise(spec);
          EXPECT_NE(rec.primary, TechniqueKind::kSgx);
          EXPECT_NE(rec.primary, TechniqueKind::kMprotect);
          EXPECT_NE(rec.primary, TechniqueKind::kInfoHide);
          EXPECT_FALSE(rec.rationale.empty());
        }
      }
    }
  }
}

TEST(AdvisorTest, ApplicabilityTableMatchesPaper) {
  const auto rows = ApplicabilityTable();
  ASSERT_EQ(rows.size(), 11u);
  int address = 0;
  int domain = 0;
  for (const auto& row : rows) {
    (row.category == Category::kAddressBased ? address : domain) += 1;
  }
  EXPECT_EQ(address, 5);
  EXPECT_EQ(domain, 6);
}

TEST(AdvisorTest, InstrumentationPointNames) {
  EXPECT_STREQ(InstrumentationPointName(InstrumentationPoint::kCallRet), "call/ret");
  EXPECT_STREQ(InstrumentationPointName(InstrumentationPoint::kAllocatorCall),
               "allocator calls");
}

}  // namespace
}  // namespace memsentry::core

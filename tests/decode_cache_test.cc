// The shared decoded-module cache: content-addressed keying, single-build
// semantics under concurrent population, reference-counted survival across
// eviction, and the Executor's cheap revalidation path. The concurrency
// tests run the same population through ParallelMap at jobs in {1, 4,
// hardware} and demand identical lowering counts and bit-identical
// execution — scheduling must never change what got built.
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/thread_pool.h"
#include "src/ir/builder.h"
#include "src/sim/decode_cache.h"
#include "src/sim/executor.h"
#include "src/sim/process.h"

namespace memsentry::sim {
namespace {

using ir::Builder;
using ir::Module;
using machine::Gpr;

// A small runnable program touching the working set; `salt` varies the
// immediate stream so distinct salts are distinct cache keys.
Module SaltedModule(uint64_t salt) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR9, kWorkingSetBase + 8 * (salt % 64));
  b.MovImm(Gpr::kRbx, 0x1000 + salt);
  b.Store(Gpr::kR9, Gpr::kRbx);
  b.Load(Gpr::kRcx, Gpr::kR9);
  b.AddImm(Gpr::kRcx, 7);
  b.Store(Gpr::kR9, Gpr::kRcx);
  b.Halt();
  return m;
}

class DecodeCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(process_.SetupStack().ok());
    ASSERT_TRUE(process_.MapRange(kWorkingSetBase, 4, machine::PageFlags::Data()).ok());
  }

  Machine machine_;
  Process process_{&machine_};
};

TEST_F(DecodeCacheTest, ContentIdenticalModulesShareOneLowering) {
  DecodeCache cache;
  const Module a = SaltedModule(1);
  const Module b = SaltedModule(1);  // equal content, different instance
  bool hit = false;
  auto da = cache.Get(a, process_, &hit);
  EXPECT_FALSE(hit);
  auto db = cache.Get(b, process_, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(da.get(), db.get());  // literally the same lowering
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(DecodeCacheTest, ContentDigestSensitivity) {
  DecodeCache cache;
  const Module a = SaltedModule(1);
  Module b = SaltedModule(1);
  b.functions[0].blocks[0].instrs[1].imm ^= 1;  // one immediate differs
  b.Touch();
  (void)cache.Get(a, process_);
  (void)cache.Get(b, process_);
  EXPECT_EQ(cache.stats().misses, 2u) << "differing content must not share a key";

  // Touch() without editing invalidates the digest memo but not the key:
  // the recomputed digest matches and the entry hits.
  Module c = SaltedModule(1);
  c.Touch();
  c.Touch();
  bool hit = false;
  (void)cache.Get(c, process_, &hit);
  EXPECT_TRUE(hit);
}

TEST_F(DecodeCacheTest, CostModelDigestKeysSeparately) {
  DecodeCache cache;
  const Module m = SaltedModule(3);
  (void)cache.Get(m, process_);
  Machine other_machine;
  other_machine.cost.alu_slot += 1.0;
  Process other(&other_machine);
  bool hit = true;
  auto decoded = cache.Get(m, other, &hit);
  EXPECT_FALSE(hit) << "a different cost model must lower separately";
  EXPECT_EQ(cache.stats().misses, 2u);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->CostMatches(other));
  EXPECT_FALSE(decoded->CostMatches(process_));
}

TEST_F(DecodeCacheTest, EvictionKeepsHeldReferencesAlive) {
  DecodeCache cache(/*capacity=*/2);
  const Module m0 = SaltedModule(10);
  const Module m1 = SaltedModule(11);
  const Module m2 = SaltedModule(12);
  auto held = cache.Get(m0, process_);
  ASSERT_NE(held, nullptr);
  (void)cache.Get(m1, process_);
  (void)cache.Get(m2, process_);  // capacity 2: evicts the LRU entry (m0)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  // The evicted lowering survives through the held reference.
  EXPECT_EQ(held->instr_count, m0.InstrCount());
  EXPECT_GT(held->functions.size(), 0u);
  // Re-requesting the evicted key lowers again.
  bool hit = true;
  (void)cache.Get(m0, process_, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().misses, 4u);
}

// The determinism contract under the PR 2 thread pool: for any jobs value,
// concurrent population performs exactly one lowering per distinct key, and
// every caller gets the same shared lowering.
TEST_F(DecodeCacheTest, ConcurrentPopulationLowersOncePerKey) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> jobs_values = {1, 4, hw > 0 ? hw : 8};
  constexpr size_t kDistinct = 4;
  constexpr size_t kCallers = 32;
  std::vector<Module> modules;
  for (size_t i = 0; i < kCallers; ++i) {
    modules.push_back(SaltedModule(i % kDistinct));
  }
  for (int jobs : jobs_values) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    DecodeCache cache;
    auto decoded = ParallelMap(jobs, kCallers, [&](size_t i) {
      return cache.Get(modules[i], process_);
    });
    ASSERT_EQ(decoded.size(), kCallers);
    EXPECT_EQ(cache.stats().misses, kDistinct) << "one lowering per key, any schedule";
    EXPECT_EQ(cache.stats().hits, kCallers - kDistinct);
    for (size_t i = 0; i < kCallers; ++i) {
      ASSERT_NE(decoded[i], nullptr);
      // Same key => same lowering object, regardless of which thread built it.
      EXPECT_EQ(decoded[i].get(), decoded[i % kDistinct].get());
    }
  }
}

// Executions through cache-shared lowerings are bit-identical to a private
// decode: same instruction counts, same cycle doubles.
TEST_F(DecodeCacheTest, SharedLoweringExecutesBitIdentically) {
  const Module m = SaltedModule(5);
  RunResult reference;
  {
    Executor executor(&process_, &m);
    reference = executor.Run({});
  }
  const auto jobs_values = {1, 4};
  for (int jobs : jobs_values) {
    auto results = ParallelMap(jobs, 4, [&](size_t i) {
      // Each caller executes on its own machine (tasks must not share
      // mutable state); the module content is shared.
      Machine machine;
      Process process(&machine);
      EXPECT_TRUE(process.SetupStack().ok());
      EXPECT_TRUE(process.MapRange(kWorkingSetBase, 4, machine::PageFlags::Data()).ok());
      Module local = SaltedModule(5);
      Executor executor(&process, &local);
      (void)i;
      return executor.Run({});
    });
    for (const RunResult& r : results) {
      EXPECT_EQ(r.instructions, reference.instructions);
      EXPECT_EQ(r.cycles, reference.cycles);
      EXPECT_EQ(r.halted, reference.halted);
      EXPECT_EQ(r.loads, reference.loads);
      EXPECT_EQ(r.stores, reference.stores);
    }
  }
}

// Executor::EnsureDecoded revalidates by (instance, version) without
// re-digesting; only a real content change forces a new cache entry.
TEST_F(DecodeCacheTest, ExecutorRevalidatesWithoutRelowering) {
  DecodeCache::Global().ResetStats();
  Module m = SaltedModule(21);
  Executor executor(&process_, &m);
  (void)executor.Run({});
  const auto after_first = DecodeCache::Global().stats();
  (void)executor.Run({});  // same module instance + version: no new lookup
  EXPECT_EQ(DecodeCache::Global().stats().misses, after_first.misses);
  EXPECT_EQ(DecodeCache::Global().stats().hits, after_first.hits);

  m.functions[0].blocks[0].instrs[1].imm ^= 2;
  m.Touch();
  (void)executor.Run({});  // stale: must re-lower under the new content key
  EXPECT_EQ(DecodeCache::Global().stats().misses, after_first.misses + 1);
}

}  // namespace
}  // namespace memsentry::sim

// MapGuard-style mmap-policy defense (src/defenses/mmap_policy.h): W^X
// enforcement, fixed-address bans, guard pages around safe regions, ASLR'd
// placements and poison-on-alloc — plus the control experiments proving each
// knob is load-bearing (the same attack succeeds with the policy off).
#include "src/defenses/mmap_policy.h"

#include <gtest/gtest.h>

#include "src/attacks/campaign_gen.h"
#include "src/attacks/strategies.h"
#include "src/core/safe_region.h"
#include "src/defenses/registry.h"
#include "src/sim/kernel.h"
#include "src/sim/process.h"

namespace memsentry {
namespace {

using defenses::MmapPolicy;
using defenses::MmapPolicyConfig;

uint64_t Mmap(sim::Kernel& kernel, uint64_t hint, uint64_t bytes) {
  return kernel.Dispatch(static_cast<uint64_t>(sim::Sysno::kMmap), hint, bytes);
}

uint64_t Mprotect(sim::Kernel& kernel, VirtAddr va, uint64_t prot) {
  return kernel.Dispatch(static_cast<uint64_t>(sim::Sysno::kMprotect), va, prot);
}

struct PolicyEnv {
  explicit PolicyEnv(const MmapPolicyConfig& config, uint64_t seed = 1)
      : process(&machine), kernel(&process), policy(&process, config, seed) {
    (void)process.SetupStack();
    kernel.Install();
    policy.Attach(&kernel);
  }
  sim::Machine machine;
  sim::Process process;
  sim::Kernel kernel;
  MmapPolicy policy;
};

TEST(MmapPolicyTest, RefusesRwxMappings) {
  PolicyEnv env(MmapPolicyConfig::Strict());
  const uint64_t va = Mmap(env.kernel, 0, kPageSize);
  ASSERT_FALSE(sim::IsSysError(va));
  const uint64_t rv = Mprotect(env.kernel, va, sim::kProtRwx);
  ASSERT_TRUE(sim::IsSysError(rv));
  EXPECT_EQ(sim::SysErrnoOf(rv), sim::Errno::kEACCES);
  EXPECT_EQ(env.policy.stats().refused_rwx, 1u);
}

TEST(MmapPolicyTest, RefusesWritableToExecutableTransition) {
  PolicyEnv env(MmapPolicyConfig::Strict());
  const uint64_t va = Mmap(env.kernel, 0, kPageSize);
  ASSERT_FALSE(sim::IsSysError(va));
  // The classic JIT-smash: write a payload, then flip the page executable.
  ASSERT_TRUE(env.process.Poke64(va, 0xc3c3c3c3c3c3c3c3ULL).ok());
  const uint64_t rv = Mprotect(env.kernel, va, sim::kProtRx);
  ASSERT_TRUE(sim::IsSysError(rv));
  EXPECT_EQ(sim::SysErrnoOf(rv), sim::Errno::kEACCES);
  EXPECT_GE(env.policy.stats().refused_transition, 1u);
}

TEST(MmapPolicyTest, RefusesExecutableToWritableTransition) {
  PolicyEnv env(MmapPolicyConfig::Strict());
  // An existing code page (mapped beneath the policy, like the program
  // image); making it writable is the other half of the W^X ban.
  const VirtAddr code = 0x700000000000ULL;
  machine::PageFlags flags;
  flags.writable = false;
  flags.user = true;
  flags.executable = true;
  ASSERT_TRUE(env.process.MapRange(code, 1, flags).ok());
  const uint64_t rv = Mprotect(env.kernel, code, sim::kProtRw);
  ASSERT_TRUE(sim::IsSysError(rv));
  EXPECT_EQ(sim::SysErrnoOf(rv), sim::Errno::kEACCES);
  EXPECT_GE(env.policy.stats().refused_transition, 1u);
}

TEST(MmapPolicyTest, WxTransitionSucceedsWithPolicyOff) {
  PolicyEnv env(MmapPolicyConfig::Off());
  const uint64_t va = Mmap(env.kernel, 0, kPageSize);
  ASSERT_FALSE(sim::IsSysError(va));
  ASSERT_TRUE(env.process.Poke64(va, 0xc3c3c3c3c3c3c3c3ULL).ok());
  // The control: without the policy the same flip goes through, which is
  // exactly why the strict configuration is the gated default.
  EXPECT_FALSE(sim::IsSysError(Mprotect(env.kernel, va, sim::kProtRx)));
}

TEST(MmapPolicyTest, RefusesFixedAddressMappings) {
  PolicyEnv env(MmapPolicyConfig::Strict());
  const uint64_t rv = Mmap(env.kernel, sim::kHeapBase + 64 * kPageSize, kPageSize);
  ASSERT_TRUE(sim::IsSysError(rv));
  EXPECT_EQ(sim::SysErrnoOf(rv), sim::Errno::kEPERM);
  EXPECT_EQ(env.policy.stats().refused_fixed, 1u);
  // Kernel-chosen placement still works.
  EXPECT_FALSE(sim::IsSysError(Mmap(env.kernel, 0, kPageSize)));
}

TEST(MmapPolicyTest, GuardPagesFlankSafeRegionsAndFaultOnTouch) {
  PolicyEnv env(MmapPolicyConfig::Strict());
  core::SafeRegionAllocator allocator(&env.process, core::TechniqueKind::kInfoHide,
                                      /*seed=*/42);
  auto region = allocator.Alloc("hidden", 4 * kPageSize);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(env.policy.InstallGuards().ok());
  EXPECT_EQ(env.policy.stats().guard_pages_installed, 2u);

  const VirtAddr below = PageAlignDown(region.value()->base) - kPageSize;
  const VirtAddr above = PageAlignUp(region.value()->base + region.value()->size);
  EXPECT_TRUE(env.policy.IsGuardPage(below));
  EXPECT_TRUE(env.policy.IsGuardPage(above));
  EXPECT_FALSE(env.policy.IsGuardPage(region.value()->base));
  // The guards are reserved holes: any touch faults instead of landing.
  EXPECT_FALSE(env.process.Peek64(below).ok());
  EXPECT_FALSE(env.process.Peek64(above).ok());
  // ...and the kernel refuses to unmap or re-protect them out of the way.
  const uint64_t rv = Mprotect(env.kernel, below, sim::kProtRw);
  ASSERT_TRUE(sim::IsSysError(rv));
  EXPECT_EQ(sim::SysErrnoOf(rv), sim::Errno::kEPERM);
  const uint64_t un = env.kernel.Dispatch(
      static_cast<uint64_t>(sim::Sysno::kMunmap), below, kPageSize);
  ASSERT_TRUE(sim::IsSysError(un));
  EXPECT_EQ(sim::SysErrnoOf(un), sim::Errno::kEPERM);
}

TEST(MmapPolicyTest, GuardPagesBreakTheAllocationOracle) {
  // The load-bearing experiment: the oracle pinpoints an unguarded hidden
  // region, but the flanking guards skew its hole measurement and it rejects
  // its own answer.
  for (const bool guarded : {false, true}) {
    sim::Machine machine;
    sim::Process process(&machine);
    core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide,
                                        /*seed=*/77);
    auto region = allocator.Alloc("hidden", 8 * kPageSize);
    ASSERT_TRUE(region.ok());
    MmapPolicy policy(&process, MmapPolicyConfig::Strict(), /*seed=*/77);
    if (guarded) {
      ASSERT_TRUE(policy.InstallGuards().ok());
    }
    auto located = attacks::AllocationOracleAttack(process, 8);
    EXPECT_EQ(located.found, !guarded) << (guarded ? "guarded" : "unguarded");
  }
}

TEST(MmapPolicyTest, PoisonVisibleBeforeInitialization) {
  PolicyEnv env(MmapPolicyConfig::Strict());
  const uint64_t va = Mmap(env.kernel, 0, 2 * kPageSize);
  ASSERT_FALSE(sim::IsSysError(va));
  auto value = env.process.Peek64(va);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 0xdedededededededeULL);
  EXPECT_EQ(env.policy.stats().poisoned_pages, 2u);
  // Off-policy control: fresh mappings read back zero, indistinguishable
  // from legitimately initialized memory.
  PolicyEnv off(MmapPolicyConfig::Off());
  const uint64_t va2 = Mmap(off.kernel, 0, kPageSize);
  ASSERT_FALSE(sim::IsSysError(va2));
  auto zero = off.process.Peek64(va2);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value(), 0u);
}

TEST(MmapPolicyTest, RandomizedPlacementUsesSeededEntropy) {
  PolicyEnv a(MmapPolicyConfig::Strict(), /*seed=*/1);
  PolicyEnv b(MmapPolicyConfig::Strict(), /*seed=*/2);
  PolicyEnv a2(MmapPolicyConfig::Strict(), /*seed=*/1);
  const uint64_t va = Mmap(a.kernel, 0, kPageSize);
  const uint64_t vb = Mmap(b.kernel, 0, kPageSize);
  const uint64_t va_again = Mmap(a2.kernel, 0, kPageSize);
  ASSERT_FALSE(sim::IsSysError(va));
  ASSERT_FALSE(sim::IsSysError(vb));
  EXPECT_NE(va, vb);        // different seeds, different placements
  EXPECT_EQ(va, va_again);  // same seed, same placement: deterministic ASLR
  EXPECT_GE(va, sim::kMmapAreaBase);
  EXPECT_EQ(a.policy.stats().randomized_placements, 1u);
  // Placement with randomization off is the kernel's sequential cursor.
  PolicyEnv off(MmapPolicyConfig::Off());
  const uint64_t fixed1 = Mmap(off.kernel, 0, kPageSize);
  const uint64_t fixed2 = Mmap(off.kernel, 0, kPageSize);
  ASSERT_FALSE(sim::IsSysError(fixed1));
  EXPECT_EQ(fixed2, fixed1 + kPageSize);
}

TEST(MmapPolicyTest, PolicyOffControlEscapesGeneratedCampaign) {
  // One hand-written campaign: map, write payload, flip executable, cash
  // out. With the policy the flip is refused (detected); without it the
  // attacker gains writable-then-executable memory — a full escape. The
  // defense, not the grammar, is what stands between the two.
  attacks::CampaignSpec spec;
  spec.technique = core::TechniqueKind::kSfi;
  spec.seed = 0xfeedULL;
  spec.steps = {attacks::CampaignStep{attacks::StepKind::kWxTransition, 0, 0, 0}};

  attacks::CampaignConfig strict;
  strict.mmap_policy = true;
  const attacks::CampaignResult held = attacks::RunCampaign(spec, strict);
  EXPECT_EQ(held.outcome, attacks::CampaignOutcome::kDetected);
  EXPECT_FALSE(held.exec_hijack);

  attacks::CampaignConfig weakened;
  weakened.mmap_policy = false;
  const attacks::CampaignResult escaped = attacks::RunCampaign(spec, weakened);
  EXPECT_EQ(escaped.outcome, attacks::CampaignOutcome::kEscaped);
  EXPECT_TRUE(escaped.exec_hijack);
}

TEST(MmapPolicyTest, RegisteredAsRuntimeDefense) {
  const auto* info = defenses::FindRuntimeDefense("MapGuard");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->header, "src/defenses/mmap_policy.h");
  EXPECT_FALSE(defenses::RuntimeDefenses().empty());
}

}  // namespace
}  // namespace memsentry

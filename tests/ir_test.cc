#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/module.h"
#include "src/ir/pass.h"
#include "src/ir/pointsto.h"
#include "src/ir/verifier.h"

namespace memsentry::ir {
namespace {

using machine::Gpr;

Module TinyValidModule() {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kRax, 1);
  b.Halt();
  return m;
}

TEST(BuilderTest, BuildsBlocksAndFunctions) {
  Module m;
  Builder b(&m);
  const int f = b.CreateFunction("main");
  EXPECT_EQ(f, 0);
  b.MovImm(Gpr::kRax, 5);
  const int loop = b.NewBlock();
  EXPECT_EQ(loop, 1);
  b.Jmp(loop);
  b.SetInsertPoint(f, loop);
  b.AddImm(Gpr::kRax, -1);
  b.CondBr(loop);
  const int exit = b.NewBlock();
  b.SetInsertPoint(f, exit);
  b.Halt();
  EXPECT_TRUE(Verify(m).ok());
  EXPECT_EQ(m.InstrCount(), 5u);
}

TEST(VerifierTest, AcceptsValidModule) {
  Module m = TinyValidModule();
  EXPECT_TRUE(Verify(m).ok());
}

TEST(VerifierTest, RejectsEmptyModule) {
  Module m;
  EXPECT_FALSE(Verify(m).ok());
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Module m = TinyValidModule();
  m.functions[0].blocks[0].instrs.pop_back();  // drop the halt
  EXPECT_FALSE(Verify(m).ok());
}

TEST(VerifierTest, RejectsTerminatorMidBlock) {
  Module m = TinyValidModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  instrs.insert(instrs.begin(), Instr{.op = Opcode::kHalt});
  EXPECT_FALSE(Verify(m).ok());
}

TEST(VerifierTest, RejectsBadBranchTarget) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.Jmp(7);
  EXPECT_FALSE(Verify(m).ok());
}

TEST(VerifierTest, RejectsCondBrWithoutFallthrough) {
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.CondBr(0);  // block 0 is the last block: nowhere to fall through
  EXPECT_FALSE(Verify(m).ok());
}

TEST(VerifierTest, RejectsBadCallTarget) {
  Module m = TinyValidModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  instrs.insert(instrs.begin(), Instr{.op = Opcode::kCall, .target = 3});
  EXPECT_FALSE(Verify(m).ok());
}

TEST(VerifierTest, RejectsWideWrpkruImmediate) {
  Module m = TinyValidModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  instrs.insert(instrs.begin(), Instr{.op = Opcode::kWrpkru, .imm = uint64_t{1} << 33});
  EXPECT_FALSE(Verify(m).ok());
}

TEST(VerifierTest, RejectsBadBoundRegister) {
  Module m = TinyValidModule();
  auto& instrs = m.functions[0].blocks[0].instrs;
  instrs.insert(instrs.begin(), Instr{.op = Opcode::kBndcu, .src = Gpr::kRax, .imm = 4});
  EXPECT_FALSE(Verify(m).ok());
}

TEST(OpcodeTest, AllOpcodesHaveNames) {
  for (int op = 0; op <= static_cast<int>(Opcode::kTrapIf); ++op) {
    EXPECT_STRNE(OpcodeName(static_cast<Opcode>(op)), "?");
  }
}

class CountingPass : public ModulePass {
 public:
  explicit CountingPass(int* counter, bool corrupt = false)
      : counter_(counter), corrupt_(corrupt) {}
  std::string name() const override { return "counting"; }
  Status Run(Module& module) override {
    ++*counter_;
    if (corrupt_) {
      module.functions[0].blocks[0].instrs.clear();
    }
    return OkStatus();
  }

 private:
  int* counter_;
  bool corrupt_;
};

TEST(PassManagerTest, RunsPassesInOrder) {
  Module m = TinyValidModule();
  int count = 0;
  PassManager pm;
  pm.Add(std::make_unique<CountingPass>(&count));
  pm.Add(std::make_unique<CountingPass>(&count));
  ASSERT_TRUE(pm.Run(m).ok());
  EXPECT_EQ(count, 2);
  EXPECT_EQ(pm.executed().size(), 2u);
}

TEST(PassManagerTest, CatchesPassBreakingModule) {
  Module m = TinyValidModule();
  int count = 0;
  PassManager pm;
  pm.Add(std::make_unique<CountingPass>(&count, /*corrupt=*/true));
  Status s = pm.Run(m);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

// ---- points-to ----

Module PointsToFixture(VirtAddr safe_base) {
  // main: r8 = safe_base; r9 = 0x1000; load via r8 (safe), store via r9
  // (not safe), load via value read from memory (unknown).
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR8, safe_base);
  b.MovImm(Gpr::kR9, 0x1000);
  b.Load(Gpr::kRbx, Gpr::kR8);     // safe pointer
  b.Store(Gpr::kR9, Gpr::kRbx);    // not safe
  b.Load(Gpr::kR10, Gpr::kR9);     // loads an unknown value...
  b.Load(Gpr::kRcx, Gpr::kR10);    // ...then dereferences it: unknown
  b.Halt();
  return m;
}

TEST(PointsToTest, ConservativeFlagsUnknowns) {
  const SafeRange range{0x480000000000ULL, 4096};
  Module m = PointsToFixture(range.base);
  auto result = AnalyzePointsTo(m, std::span(&range, 1), /*conservative=*/true,
                                /*annotate=*/false);
  EXPECT_EQ(result.total_mem_ops, 4u);
  // Safe-pointer load + unknown-pointer load are flagged; the 0x1000 store
  // and the load *from* 0x1000 are provably not safe.
  EXPECT_EQ(result.may_access, 2u);
}

TEST(PointsToTest, OptimisticFlagsOnlyProvenSafe) {
  const SafeRange range{0x480000000000ULL, 4096};
  Module m = PointsToFixture(range.base);
  auto result = AnalyzePointsTo(m, std::span(&range, 1), /*conservative=*/false,
                                /*annotate=*/false);
  EXPECT_EQ(result.may_access, 1u);
}

TEST(PointsToTest, AnnotationSetsFlags) {
  const SafeRange range{0x480000000000ULL, 4096};
  Module m = PointsToFixture(range.base);
  auto result = AnalyzePointsTo(m, std::span(&range, 1), /*conservative=*/false,
                                /*annotate=*/true);
  ASSERT_EQ(result.refs.size(), 1u);
  const auto& ref = result.refs[0];
  const Instr& instr = m.functions[static_cast<size_t>(ref.function)]
                           .blocks[static_cast<size_t>(ref.block)]
                           .instrs[static_cast<size_t>(ref.index)];
  EXPECT_TRUE(instr.IsSafeAccess());
}

TEST(PointsToTest, DerivedPointersKeepProvenance) {
  const SafeRange range{0x480000000000ULL, 4096};
  Module m;
  Builder b(&m);
  b.CreateFunction("main");
  b.MovImm(Gpr::kR8, range.base);
  b.Lea(Gpr::kR9, Gpr::kR8, 128);  // derived safe pointer
  b.Load(Gpr::kRbx, Gpr::kR9);
  b.Halt();
  auto result = AnalyzePointsTo(m, std::span(&range, 1), /*conservative=*/false,
                                /*annotate=*/false);
  EXPECT_EQ(result.may_access, 1u);
}

}  // namespace
}  // namespace memsentry::ir

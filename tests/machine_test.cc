#include <gtest/gtest.h>

#include "src/machine/cache.h"
#include "src/machine/mmu.h"
#include "src/machine/page_table.h"
#include "src/machine/phys_mem.h"
#include "src/machine/tlb.h"

namespace memsentry::machine {
namespace {

TEST(PhysicalMemoryTest, AllocatesDistinctZeroedFrames) {
  PhysicalMemory pmem(1024);
  auto a = pmem.AllocFrame();
  auto b = pmem.AllocFrame();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(pmem.Read64(a.value()), 0u);
}

TEST(PhysicalMemoryTest, ReadBackWrites) {
  PhysicalMemory pmem(64);
  auto frame = pmem.AllocFrame();
  ASSERT_TRUE(frame.ok());
  pmem.Write64(frame.value() + 16, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(pmem.Read64(frame.value() + 16), 0xdeadbeefcafef00dULL);
  pmem.Write8(frame.value() + 5, 0xab);
  EXPECT_EQ(pmem.Read8(frame.value() + 5), 0xab);
}

TEST(PhysicalMemoryTest, FreeAndReuse) {
  PhysicalMemory pmem(4);  // frames 1..3 usable
  auto a = pmem.AllocFrame();
  auto b = pmem.AllocFrame();
  auto c = pmem.AllocFrame();
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(pmem.AllocFrame().ok());  // exhausted
  ASSERT_TRUE(pmem.FreeFrame(b.value()).ok());
  auto d = pmem.AllocFrame();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), a.value() + kPageSize);  // reused the freed frame
}

TEST(PhysicalMemoryTest, DoubleFreeFails) {
  PhysicalMemory pmem(16);
  auto a = pmem.AllocFrame();
  ASSERT_TRUE(pmem.FreeFrame(a.value()).ok());
  EXPECT_FALSE(pmem.FreeFrame(a.value()).ok());
}

class PageTableTest : public ::testing::Test {
 protected:
  PhysicalMemory pmem_{1 << 16};
  PageTable pt_{&pmem_};
};

TEST_F(PageTableTest, MapWalkUnmap) {
  const VirtAddr va = 0x123456789000ULL;
  auto frame = pt_.MapNew(va, PageFlags::Data());
  ASSERT_TRUE(frame.ok());
  auto walk = pt_.Walk(va + 0x123);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(walk.value().phys, frame.value() + 0x123);
  EXPECT_EQ(walk.value().levels_touched, 4);
  ASSERT_TRUE(pt_.Unmap(va).ok());
  EXPECT_FALSE(pt_.Walk(va).ok());
}

TEST_F(PageTableTest, DoubleMapFails) {
  const VirtAddr va = 0x5000;
  ASSERT_TRUE(pt_.MapNew(va, PageFlags::Data()).ok());
  EXPECT_FALSE(pt_.MapNew(va, PageFlags::Data()).ok());
}

TEST_F(PageTableTest, UnalignedMapFails) {
  EXPECT_FALSE(pt_.Map(0x123, 0x1000, PageFlags::Data()).ok());
}

TEST_F(PageTableTest, PermissionBitsRoundTrip) {
  const VirtAddr va = 0x7000;
  ASSERT_TRUE(pt_.MapNew(va, PageFlags::Code()).ok());
  auto walk = pt_.Walk(va);
  ASSERT_TRUE(walk.ok());
  EXPECT_FALSE(PageTable::PteWritable(walk.value().pte));
  EXPECT_FALSE(PageTable::PteNx(walk.value().pte));  // code is executable
  ASSERT_TRUE(pt_.Protect(va, PageFlags::Data()).ok());
  walk = pt_.Walk(va);
  EXPECT_TRUE(PageTable::PteWritable(walk.value().pte));
  EXPECT_TRUE(PageTable::PteNx(walk.value().pte));
}

TEST_F(PageTableTest, ProtectionKeyInPteBits59To62) {
  const VirtAddr va = 0x9000;
  PageFlags flags = PageFlags::Data();
  flags.pkey = 11;
  ASSERT_TRUE(pt_.MapNew(va, flags).ok());
  auto walk = pt_.Walk(va);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(PageTable::PtePkey(walk.value().pte), 11);
  // The architectural bit positions (SDM 4.6.2).
  EXPECT_EQ((walk.value().pte >> 59) & 0xf, 11u);
  ASSERT_TRUE(pt_.SetKey(va, 3).ok());
  walk = pt_.Walk(va);
  EXPECT_EQ(PageTable::PtePkey(walk.value().pte), 3);
}

TEST_F(PageTableTest, SetKeyRejectsBadKeyAndMissingPage) {
  ASSERT_TRUE(pt_.MapNew(0xa000, PageFlags::Data()).ok());
  EXPECT_FALSE(pt_.SetKey(0xa000, 16).ok());
  EXPECT_FALSE(pt_.SetKey(0xb000, 1).ok());
}

TEST(TlbTest, HitAfterInsert) {
  Tlb tlb;
  EXPECT_FALSE(tlb.Lookup(0x1000, 0).has_value());
  tlb.Insert(0x1000, 0, 0xabc);
  auto hit = tlb.Lookup(0x1000, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0xabcu);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TlbTest, VpidTagsIsolateEntries) {
  Tlb tlb;
  tlb.Insert(0x1000, 1, 0x111);
  tlb.Insert(0x1000, 2, 0x222);
  EXPECT_EQ(*tlb.Lookup(0x1000, 1), 0x111u);
  EXPECT_EQ(*tlb.Lookup(0x1000, 2), 0x222u);
  tlb.FlushVpid(1);
  EXPECT_FALSE(tlb.Lookup(0x1000, 1).has_value());
  EXPECT_TRUE(tlb.Lookup(0x1000, 2).has_value());
}

TEST(TlbTest, InvalidatePageDropsAllVpids) {
  Tlb tlb;
  tlb.Insert(0x1000, 1, 0x111);
  tlb.Insert(0x1000, 2, 0x222);
  tlb.InvalidatePage(0x1000);
  EXPECT_FALSE(tlb.Lookup(0x1000, 1).has_value());
  EXPECT_FALSE(tlb.Lookup(0x1000, 2).has_value());
}

TEST(TlbTest, LruEvictionWithinSet) {
  Tlb tlb;
  // Fill one set (same set index) beyond its ways.
  const uint64_t set_stride = uint64_t{Tlb::kSets} << kPageShift;
  for (int i = 0; i <= Tlb::kWays; ++i) {
    tlb.Insert(0x1000 + i * set_stride, 0, 0x100 + i);
  }
  // The oldest entry must have been evicted.
  EXPECT_FALSE(tlb.Lookup(0x1000, 0).has_value());
  EXPECT_TRUE(tlb.Lookup(0x1000 + Tlb::kWays * set_stride, 0).has_value());
}

TEST(CacheTest, HierarchyFillsDownward) {
  CacheHierarchy cache;
  EXPECT_EQ(cache.Access(0x1000), CacheLevel::kDram);  // cold
  EXPECT_EQ(cache.Access(0x1000), CacheLevel::kL1);    // hot
  EXPECT_EQ(cache.Access(0x1040), CacheLevel::kDram);  // different line
}

TEST(CacheTest, L1EvictionFallsBackToL2) {
  CacheHierarchy cache;
  // Touch a 64 KiB region (2x L1) twice: second pass should hit L2, not L1,
  // for the evicted early lines.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
      cache.Access(addr);
    }
  }
  const auto& stats = cache.stats();
  EXPECT_GT(stats.l2_hits, 0u);
  EXPECT_EQ(stats.accesses, 2048u);
}

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : mmu_(&pmem_, &cost_) {
    mmu_.SetPageTable(&pt_);
  }
  PhysicalMemory pmem_{1 << 16};
  CostModel cost_;
  PageTable pt_{&pmem_};
  Mmu mmu_{&pmem_, &cost_};
  Pkru pkru_{};
};

TEST_F(MmuTest, TranslatesAndCaches) {
  ASSERT_TRUE(pt_.MapNew(0x4000, PageFlags::Data()).ok());
  auto first = mmu_.Access(0x4000, AccessType::kRead, pkru_);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().tlb_hit);
  auto second = mmu_.Access(0x4000, AccessType::kRead, pkru_);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().tlb_hit);
  EXPECT_LT(second.value().cycles, first.value().cycles);
}

TEST_F(MmuTest, UnmappedFaults) {
  auto r = mmu_.Access(0x4000, AccessType::kRead, pkru_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().type, FaultType::kPageNotPresent);
}

TEST_F(MmuTest, NonCanonicalFaults) {
  auto r = mmu_.Access(kAddressSpaceEnd, AccessType::kRead, pkru_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().type, FaultType::kNonCanonical);
}

TEST_F(MmuTest, WriteProtection) {
  ASSERT_TRUE(pt_.MapNew(0x4000, PageFlags::ReadOnlyData()).ok());
  EXPECT_TRUE(mmu_.Access(0x4000, AccessType::kRead, pkru_).ok());
  auto w = mmu_.Access(0x4000, AccessType::kWrite, pkru_);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.fault().type, FaultType::kWriteProtection);
}

TEST_F(MmuTest, NxEnforced) {
  ASSERT_TRUE(pt_.MapNew(0x4000, PageFlags::Data()).ok());
  auto x = mmu_.Access(0x4000, AccessType::kExecute, pkru_);
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.fault().type, FaultType::kNxViolation);
}

TEST_F(MmuTest, PkeyChecksApplyOnTlbHits) {
  PageFlags flags = PageFlags::Data();
  flags.pkey = 5;
  ASSERT_TRUE(pt_.MapNew(0x4000, flags).ok());
  // Warm the TLB with the key accessible.
  ASSERT_TRUE(mmu_.Access(0x4000, AccessType::kRead, pkru_).ok());
  // Disable the key: takes effect immediately, NO TLB flush needed (as on
  // real MPK hardware).
  pkru_.SetAccessDisable(5, true);
  auto r = mmu_.Access(0x4000, AccessType::kRead, pkru_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().type, FaultType::kPkeyAccessDisabled);
}

TEST_F(MmuTest, PkeyWriteDisableAllowsReads) {
  PageFlags flags = PageFlags::Data();
  flags.pkey = 7;
  ASSERT_TRUE(pt_.MapNew(0x4000, flags).ok());
  pkru_.SetWriteDisable(7, true);
  EXPECT_TRUE(mmu_.Access(0x4000, AccessType::kRead, pkru_).ok());
  auto w = mmu_.Access(0x4000, AccessType::kWrite, pkru_);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.fault().type, FaultType::kPkeyWriteDisabled);
}

TEST_F(MmuTest, PteChangesRequireInvalidation) {
  ASSERT_TRUE(pt_.MapNew(0x4000, PageFlags::Data()).ok());
  ASSERT_TRUE(mmu_.Access(0x4000, AccessType::kWrite, pkru_).ok());
  ASSERT_TRUE(pt_.Protect(0x4000, PageFlags::ReadOnlyData()).ok());
  // Stale TLB entry still allows the write (hardware behaviour)...
  EXPECT_TRUE(mmu_.Access(0x4000, AccessType::kWrite, pkru_).ok());
  // ...until the kernel invalidates.
  mmu_.InvalidatePage(0x4000);
  EXPECT_FALSE(mmu_.Access(0x4000, AccessType::kWrite, pkru_).ok());
}

TEST_F(MmuTest, ReadWriteHelpers) {
  ASSERT_TRUE(pt_.MapNew(0x4000, PageFlags::Data()).ok());
  Cycles cycles = 0;
  ASSERT_TRUE(mmu_.Write64(0x4008, 0x1122334455667788ULL, pkru_, &cycles).ok());
  auto v = mmu_.Read64(0x4008, pkru_, &cycles);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 0x1122334455667788ULL);
  EXPECT_GT(cycles, 0.0);
}

TEST_F(MmuTest, BufferAccessSpansPages) {
  ASSERT_TRUE(pt_.MapNew(0x4000, PageFlags::Data()).ok());
  ASSERT_TRUE(pt_.MapNew(0x5000, PageFlags::Data()).ok());
  std::vector<uint8_t> data(256, 0xcd);
  Cycles cycles = 0;
  ASSERT_TRUE(mmu_.WriteBytes(0x4f80, data.data(), data.size(), pkru_, &cycles).ok());
  std::vector<uint8_t> back(256);
  ASSERT_TRUE(mmu_.ReadBytes(0x4f80, back.data(), back.size(), pkru_, &cycles).ok());
  EXPECT_EQ(data, back);
}

// A fake second level that remaps one frame and rejects another.
class FakeSecondLevel : public SecondLevelTranslation {
 public:
  FaultOr<PhysAddr> TranslateGuestPhys(GuestPhysAddr gpa, AccessType access) override {
    if (blocked_ != 0 && PageAlignDown(gpa) == blocked_) {
      return Fault{FaultType::kEptViolation, gpa, access};
    }
    return gpa;  // identity
  }
  int ExtraWalkLevels() const override { return 4; }
  void SetTag(uint16_t tag) { SetAsidTag(tag); }

  FakeSecondLevel() { SetAsidTag(1); }

  GuestPhysAddr blocked_ = 0;
};

TEST_F(MmuTest, SecondLevelViolationSurfacesVirtualAddress) {
  auto frame = pt_.MapNew(0x4000, PageFlags::Data());
  ASSERT_TRUE(frame.ok());
  FakeSecondLevel second;
  second.blocked_ = PageAlignDown(frame.value());
  mmu_.SetSecondLevel(&second);
  auto r = mmu_.Access(0x4000, AccessType::kRead, pkru_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().type, FaultType::kEptViolation);
  EXPECT_EQ(r.fault().address, 0x4000u);  // reported in virtual space
}

TEST_F(MmuTest, SecondLevelSwitchNeedsNoFlush) {
  auto frame = pt_.MapNew(0x4000, PageFlags::Data());
  ASSERT_TRUE(frame.ok());
  FakeSecondLevel second;
  mmu_.SetSecondLevel(&second);
  ASSERT_TRUE(mmu_.Access(0x4000, AccessType::kRead, pkru_).ok());
  // "Switch EPTs": block the frame and change the ASID tag. The stale entry
  // under tag 1 must not leak into tag 2.
  second.blocked_ = PageAlignDown(frame.value());
  second.SetTag(2);
  auto r = mmu_.Access(0x4000, AccessType::kRead, pkru_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().type, FaultType::kEptViolation);
  // Switching back re-hits the old entry without a walk.
  second.SetTag(1);
  auto back = mmu_.Access(0x4000, AccessType::kRead, pkru_);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().tlb_hit);
}

}  // namespace
}  // namespace memsentry::machine

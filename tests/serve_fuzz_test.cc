// Serve-protocol framing robustness (the hardening the shard coordinator
// leans on): a ServeLoop fed malformed JSON, unknown commands, truncated
// frames, oversized lines, mid-write disconnects, and a seeded storm of
// mutated frames must answer with typed error replies (or cleanly drop the
// connection where the stream cannot resynchronize) and keep serving valid
// requests afterwards — never crash, never wedge. Also pins the socket
// hygiene satellites: the inode is 0600, a live server refuses a bind
// collision, and a stale socket from a crashed server is unlinked and
// rebound.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/eval/serve.h"
#include "src/suite/workloads.h"

#if !defined(_WIN32)

#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <thread>

namespace memsentry {
namespace {

// A live ServeLoop on a background thread, torn down via the protocol's own
// shutdown command.
class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ::signal(SIGPIPE, SIG_IGN);  // mid-write drops are the point of the test
    socket_path_ = ::testing::TempDir() + "ms_fuzz_" + std::to_string(::getpid()) + ".sock";
    ::unlink(socket_path_.c_str());
    eval::ServeOptions options;
    options.socket_path = socket_path_;
    options.registry = &suite::SuiteRegistry();
    options.jobs = 1;
    options.quiet = true;
    server_ = std::thread([this, options] { serve_status_ = eval::ServeLoop(options); });
    ASSERT_TRUE(WaitForPing()) << "serve socket never came up: " << socket_path_;
  }

  void TearDown() override {
    if (server_.joinable()) {
      json::Value shutdown = json::Value::Object();
      shutdown.Set("cmd", "shutdown");
      auto reply = eval::ServeRequest(socket_path_, shutdown);
      EXPECT_TRUE(reply.ok() && reply->BoolOr("ok", false));
      server_.join();
      EXPECT_EQ(serve_status_, 0);
    }
  }

  bool WaitForPing() {
    json::Value ping = json::Value::Object();
    ping.Set("cmd", "ping");
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto reply = eval::ServeRequest(socket_path_, ping);
      if (reply.ok() && reply->BoolOr("ok", false)) {
        return true;
      }
      ::usleep(50'000);
    }
    return false;
  }

  // Raw client connection with send/recv timeouts so a hypothetical server
  // wedge fails the test instead of hanging it.
  int Connect() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    return fd;
  }

  // Sends raw bytes (best effort — the server may drop us mid-write) and
  // reads one reply line ("" on EOF/timeout). `half_close` shuts the write
  // side first, so a frame without a newline still presents EOF; with
  // `read_reply` false the connection is torn down without waiting (the
  // mid-write vanish case — the server gets no frame terminator at all).
  std::string Exchange(const std::string& bytes, bool half_close = false,
                       bool read_reply = true) {
    const int fd = Connect();
    EXPECT_GE(fd, 0);
    if (fd < 0) {
      return "";
    }
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        break;  // server already dropped us — a legitimate outcome here
      }
      sent += static_cast<size_t>(n);
    }
    if (half_close) {
      ::shutdown(fd, SHUT_WR);  // EOF mid-frame without closing the read side
    }
    std::string reply;
    if (read_reply) {
      char c = 0;
      while (::recv(fd, &c, 1, 0) == 1 && c != '\n') {
        reply.push_back(c);
      }
    }
    ::close(fd);
    return reply;
  }

  // The reply's typed error code ("" when the reply is empty or untyped).
  static std::string Code(const std::string& reply) {
    if (reply.empty()) {
      return "";
    }
    auto parsed = json::Parse(reply);
    if (!parsed.ok() || parsed->BoolOr("ok", true)) {
      return "";
    }
    return parsed->StringOr("code", "");
  }

  std::string socket_path_;
  std::thread server_;
  int serve_status_ = -1;
};

TEST_F(ServeFixture, TypedRejectionsForClassifiableGarbage) {
  EXPECT_EQ(Code(Exchange("this is not json\n")), "bad_json");
  EXPECT_EQ(Code(Exchange("{\"cmd\":\"ping\"", /*half_close=*/true)), "truncated_frame")
      << "EOF mid-frame";
  EXPECT_EQ(Code(Exchange("{\"cmd\":\"explode\"}\n")), "unknown_cmd");
  EXPECT_EQ(Code(Exchange("{\"cmd\":\"run_cell\"}\n")), "missing_field");
  EXPECT_EQ(Code(Exchange("{\"cmd\":\"run_cell\",\"workload\":\"no_such\","
                          "\"cell\":\"x\"}\n")),
            "unknown_workload");
  EXPECT_EQ(Code(Exchange("{\"cmd\":\"run_cell\",\"workload\":\"fault_matrix\","
                          "\"cell\":\"no_such_cell\",\"quick\":true,"
                          "\"instructions\":100000}\n")),
            "unknown_cell");
  // submit with no workload resolves the empty name against the registry.
  EXPECT_EQ(Code(Exchange("{\"cmd\":\"submit\"}\n")), "unknown_workload");
  EXPECT_EQ(Code(Exchange("{\"cmd\":\"wait\",\"job\":424242}\n")), "unknown_job");
  // The loop survived every rejection.
  EXPECT_TRUE(WaitForPing());
}

TEST_F(ServeFixture, OversizedLineGetsTypedReplyThenDrop) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  // Stream junk past the line cap in chunks; the server stops reading at the
  // cap and replies, so late writes may fail — that is the drop in action.
  const std::string chunk(1u << 20, 'a');
  size_t pushed = 0;
  while (pushed <= eval::kServeMaxLineBytes + chunk.size()) {
    const ssize_t n = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    pushed += static_cast<size_t>(n);
  }
  std::string reply;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') {
    reply.push_back(c);
  }
  ::close(fd);
  if (!reply.empty()) {  // the reply can be lost if the kernel reset us first
    auto parsed = json::Parse(reply);
    ASSERT_TRUE(parsed.ok()) << reply;
    EXPECT_FALSE(parsed->BoolOr("ok", true));
    EXPECT_EQ(parsed->StringOr("code", ""), "oversized_line");
  }
  EXPECT_TRUE(WaitForPing());
}

TEST_F(ServeFixture, MidWriteDisconnectsDoNotWedgeTheLoop) {
  for (int i = 0; i < 8; ++i) {
    const int fd = Connect();
    ASSERT_GE(fd, 0);
    const std::string partial = "{\"cmd\":\"subm";
    (void)::send(fd, partial.data(), static_cast<size_t>(i) % partial.size() + 1,
                 MSG_NOSIGNAL);
    ::close(fd);  // vanish mid-frame, no EOF marker read
  }
  EXPECT_TRUE(WaitForPing());
}

// Seeded storm: mutate a pool of valid frames (truncation, byte flips,
// splices, raw noise) and throw every variant at the loop. The invariant is
// not any particular reply — it is that the server classifies or drops each
// one and still answers a clean ping afterwards.
TEST_F(ServeFixture, SeededFrameMutationStormSurvives) {
  const std::vector<std::string> pool = {
      "{\"cmd\":\"ping\"}",
      "{\"cmd\":\"workloads\"}",
      "{\"cmd\":\"status\"}",
      "{\"cmd\":\"run_cell\",\"workload\":\"fault_matrix\",\"cell\":\"x\","
      "\"quick\":true,\"instructions\":100000,\"seed\":1,\"attempt\":1}",
  };
  uint64_t rng = 0xC0FFEE;  // deterministic: failures replay exactly
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int iter = 0; iter < 200; ++iter) {
    std::string frame = pool[next() % pool.size()];
    switch (next() % 4) {
      case 0:  // truncate
        frame.resize(next() % (frame.size() + 1));
        break;
      case 1:  // flip bytes
        for (int k = 0; k < 3 && !frame.empty(); ++k) {
          frame[next() % frame.size()] ^= static_cast<char>(1 + next() % 255);
        }
        break;
      case 2:  // splice two frames mid-byte
        frame = frame.substr(0, next() % (frame.size() + 1)) +
                pool[next() % pool.size()];
        break;
      default:  // raw noise
        frame.clear();
        for (size_t k = next() % 64; k > 0; --k) {
          frame.push_back(static_cast<char>(next() % 256));
        }
        break;
    }
    // Strip embedded newlines so one exchange stays one frame, then vary the
    // terminator: newline, EOF half-close, or hard close.
    for (char& c : frame) {
      if (c == '\n') {
        c = ' ';
      }
    }
    const unsigned ending = next() % 3;
    if (ending == 0) {
      (void)Exchange(frame + "\n");
    } else if (ending == 1) {
      (void)Exchange(frame, /*half_close=*/true);
    } else {
      // Vanish without a terminator: nothing to read back, do not wait.
      (void)Exchange(frame, /*half_close=*/false, /*read_reply=*/false);
    }
    if (iter % 50 == 0) {
      ASSERT_TRUE(WaitForPing()) << "loop wedged after iteration " << iter;
    }
  }
  EXPECT_TRUE(WaitForPing());
}

TEST_F(ServeFixture, SocketModeIsOwnerOnlyAndLiveCollisionRefused) {
  struct stat st{};
  ASSERT_EQ(::stat(socket_path_.c_str(), &st), 0);
  EXPECT_EQ(st.st_mode & 07777, 0600u);

  // A second loop on the same path must refuse to steal a live socket...
  eval::ServeOptions options;
  options.socket_path = socket_path_;
  options.registry = &suite::SuiteRegistry();
  options.jobs = 1;
  options.quiet = true;
  EXPECT_EQ(eval::ServeLoop(options), 1);
  // ...and the original server is untouched.
  EXPECT_TRUE(WaitForPing());
}

TEST(ServeSocket, StaleSocketIsUnlinkedAndRebound) {
  ::signal(SIGPIPE, SIG_IGN);
  const std::string path =
      ::testing::TempDir() + "ms_stale_" + std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  // Leave a dead socket inode behind, as a crashed server would.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(fd);  // no listener ever answers here
  }

  eval::ServeOptions options;
  options.socket_path = path;
  options.registry = &suite::SuiteRegistry();
  options.jobs = 1;
  options.quiet = true;
  int status = -1;
  std::thread server([&] { status = eval::ServeLoop(options); });
  json::Value ping = json::Value::Object();
  ping.Set("cmd", "ping");
  bool up = false;
  for (int attempt = 0; attempt < 100 && !up; ++attempt) {
    auto reply = eval::ServeRequest(path, ping);
    up = reply.ok() && reply->BoolOr("ok", false);
    if (!up) {
      ::usleep(50'000);
    }
  }
  EXPECT_TRUE(up) << "stale socket was not reclaimed";
  json::Value shutdown = json::Value::Object();
  shutdown.Set("cmd", "shutdown");
  auto reply = eval::ServeRequest(path, shutdown);
  EXPECT_TRUE(reply.ok() && reply->BoolOr("ok", false));
  server.join();
  EXPECT_EQ(status, 0);
}

}  // namespace
}  // namespace memsentry

#endif  // !_WIN32

// Tests for the experiment engine's work pool (src/base/thread_pool.h):
// Submit futures, ordered ParallelMap, the jobs=1 inline degenerate case,
// and exception propagation.
#include "src/base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace memsentry {
namespace {

TEST(ThreadPoolTest, HardwareJobsIsPositive) {
  EXPECT_GE(HardwareJobs(), 1);
  EXPECT_EQ(ResolveJobs(0), HardwareJobs());
  EXPECT_EQ(ResolveJobs(-3), HardwareJobs());
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(7), 7);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.threads(), 2);
  auto a = pool.Submit([] { return 21 * 2; });
  auto b = pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "done");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        ++done;
        return 0;
      });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder) {
  // Make early indices slow so a racy implementation would misplace them.
  const auto square_slowly = [](size_t i) {
    if (i < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return static_cast<int>(i * i);
  };
  const std::vector<int> out = ParallelMap(4, 32, square_slowly);
  ASSERT_EQ(out.size(), 32u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i)) << i;
  }
}

TEST(ThreadPoolTest, ParallelMapJobsOneRunsInlineInOrder) {
  // jobs=1 must execute on the calling thread, strictly in index order —
  // the degenerate case the determinism guarantee is defined against.
  const auto caller = std::this_thread::get_id();
  std::vector<size_t> order;
  const std::vector<int> out = ParallelMap(1, 8, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
    return static_cast<int>(i);
  });
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ParallelMapMatchesSerialResult) {
  const auto fn = [](size_t i) { return static_cast<uint64_t>(i) * 2654435761u; };
  const auto serial = ParallelMap(1, 100, fn);
  const auto parallel = ParallelMap(8, 100, fn);
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPoolTest, ParallelMapRethrowsTaskException) {
  std::atomic<int> completed{0};
  const auto fn = [&](size_t i) -> int {
    if (i == 5) {
      throw std::runtime_error("cell 5 failed");
    }
    ++completed;
    return static_cast<int>(i);
  };
  EXPECT_THROW(ParallelMap(4, 16, fn), std::runtime_error);
  // All non-throwing tasks still ran (the pool drains before rethrowing).
  EXPECT_EQ(completed.load(), 15);
}

}  // namespace
}  // namespace memsentry

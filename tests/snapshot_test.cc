// The snapshot format's contract, tested at every layer: the low-level
// writer/reader primitives round-trip and latch typed errors; corrupt blobs
// (bad magic, future version, truncation, checksum damage) are rejected with
// the documented StatusCode instead of crashing; 256 seeded random mutations
// never crash the loader (run under ASan in CI); presence matching between a
// blob's components and the caller's is strict both ways; file IO is atomic;
// a committed golden v1 blob still loads byte-for-byte, pinning the format
// across future changes; and eval-level checkpointed experiments are
// bit-identical to uninterrupted ones.
//
// Regenerating the golden after a deliberate format or cost-model change:
//   MEMSENTRY_WRITE_GOLDEN=1 ./build/tests/snapshot_test
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/memsentry.h"
#include "src/defenses/shadow_stack.h"
#include "src/eval/figures.h"
#include "src/machine/snapshot.h"
#include "src/sim/executor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/kernel.h"
#include "src/sim/snapshot.h"
#include "src/workloads/spec_profiles.h"
#include "src/workloads/synth.h"

#ifndef MEMSENTRY_SOURCE_DIR
#define MEMSENTRY_SOURCE_DIR "."
#endif

namespace memsentry {
namespace {

// --- Little-endian peeks/pokes for surgical header corruption ---------------

uint32_t ReadLe32(const std::string& b, size_t off) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(b[off + static_cast<size_t>(i)]);
  }
  return v;
}

uint64_t ReadLe64(const std::string& b, size_t off) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(b[off + static_cast<size_t>(i)]);
  }
  return v;
}

void WriteLe32(std::string* b, size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*b)[off + static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void WriteLe64(std::string* b, size_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*b)[off + static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

// Recomputes the payload checksum so a payload mutation gets past the
// checksum gate and exercises the bounds-checked decoders themselves.
void ResealChecksum(std::string* b) {
  const size_t header = machine::kSnapshotHeaderBytes;
  WriteLe64(b, 16, machine::SnapshotDigest(b->data() + header, b->size() - header));
}

// --- A small deterministic pipeline to snapshot -----------------------------
// MPK + shadow stack: pkeys, a safe region, domain instrumentation — enough
// machine state to make serialization non-trivial, small enough to be fast.

struct Pipeline {
  sim::Machine machine;
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<core::MemSentry> ms;
  ir::Module module;
};

std::unique_ptr<Pipeline> BuildPipeline(uint64_t seed) {
  auto p = std::make_unique<Pipeline>();
  p->process = std::make_unique<sim::Process>(&p->machine);
  const workloads::SpecProfile& profile = workloads::SpecCpu2006()[0];
  EXPECT_TRUE(workloads::PrepareWorkloadProcess(*p->process, profile).ok());
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kMpk;
  config.options.mode = core::ProtectMode::kReadWrite;
  p->ms = std::make_unique<core::MemSentry>(p->process.get(), config);
  auto region = p->ms->allocator().Alloc("secret", 4096);
  EXPECT_TRUE(region.ok());
  workloads::SynthOptions synth;
  synth.target_instructions = 60'000;
  synth.seed = seed;
  p->module = workloads::SynthesizeSpecProgram(profile, synth);
  defenses::ShadowStackPass pass(region.ok() ? region.value()->base : 0);
  EXPECT_TRUE(pass.Run(p->module).ok());
  EXPECT_TRUE(p->ms->Protect(p->module).ok());
  return p;
}

constexpr uint64_t kCanonicalSeed = 0x5eedf00dULL;
constexpr uint64_t kMidpoint = 9'000;

// One mid-run snapshot (process + in-flight RunResult), shared by the
// corruption and fuzz tests. Built once; snapshotting is deterministic, so
// the bytes are identical on every call anyway.
const std::string& CanonicalBlob() {
  static const std::string* blob = [] {
    auto p = BuildPipeline(kCanonicalSeed);
    sim::Executor executor(p->process.get(), &p->module);
    sim::RunConfig rc;
    rc.max_instructions = kMidpoint;
    const sim::RunResult partial = executor.Run(rc);
    EXPECT_TRUE(partial.hit_instruction_limit);
    EXPECT_TRUE(partial.cursor.valid);
    return new std::string(
        sim::SaveSnapshot(*p->process, &partial, nullptr, nullptr, "canonical"));
  }();
  return *blob;
}

StatusCode LoadCode(const std::string& blob) {
  auto twin = BuildPipeline(kCanonicalSeed);
  sim::RunResult partial;
  return sim::LoadSnapshot(blob, twin->process.get(), &partial, nullptr, nullptr).code();
}

// --- Writer/reader primitives -----------------------------------------------

TEST(SnapshotPrimitives, RoundTripThroughHeaderAndChecksum) {
  machine::SnapshotWriter w;
  w.PutTag(0xAB01);
  w.PutU8(0x12);
  w.PutU16(0x3456);
  w.PutU32(0x789abcdeu);
  w.PutU64(0x1122334455667788ULL);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutDouble(0.1);  // raw IEEE bits, must round-trip exactly
  w.PutString("snapshot");
  const std::string blob = w.Finalize();

  ASSERT_GE(blob.size(), machine::kSnapshotHeaderBytes);
  EXPECT_EQ(ReadLe32(blob, 0), machine::kSnapshotMagic);
  EXPECT_EQ(ReadLe32(blob, 4), machine::kSnapshotVersion);
  EXPECT_EQ(ReadLe64(blob, 8), blob.size() - machine::kSnapshotHeaderBytes);

  auto r = machine::SnapshotReader::Open(blob);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->ExpectTag(0xAB01, "test section"));
  EXPECT_EQ(r->U8(), 0x12);
  EXPECT_EQ(r->U16(), 0x3456);
  EXPECT_EQ(r->U32(), 0x789abcdeu);
  EXPECT_EQ(r->U64(), 0x1122334455667788ULL);
  EXPECT_EQ(r->I64(), -42);
  EXPECT_TRUE(r->Bool());
  EXPECT_EQ(r->Double(), 0.1);
  EXPECT_EQ(r->String(), "snapshot");
  EXPECT_TRUE(r->Finish().ok());
}

TEST(SnapshotPrimitives, FinishFlagsUnconsumedBytes) {
  machine::SnapshotWriter w;
  w.PutU32(1);
  w.PutU32(2);
  auto r = machine::SnapshotReader::Open(w.Finalize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->U32(), 1u);
  // A reader that stops early is a format drift; Finish is loud about it.
  EXPECT_FALSE(r->Finish().ok());
}

TEST(SnapshotPrimitives, TagMismatchLatchesAndKeepsReadsInert) {
  machine::SnapshotWriter w;
  w.PutTag(0x1111);
  w.PutU64(77);
  auto r = machine::SnapshotReader::Open(w.Finalize());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->ExpectTag(0x2222, "wrong section"));
  EXPECT_EQ(r->status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r->U64(), 0u);  // latched: reads return zero, never advance past end
  EXPECT_FALSE(r->Finish().ok());
}

TEST(SnapshotPrimitives, ReadPastEndLatchesOutOfRange) {
  machine::SnapshotWriter w;
  w.PutU8(1);
  auto r = machine::SnapshotReader::Open(w.Finalize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->U64(), 0u);
  EXPECT_EQ(r->status().code(), StatusCode::kOutOfRange);
  // FitCount guards container sizing: an absurd length prefix must not
  // attempt an allocation.
  EXPECT_FALSE(r->FitCount(uint64_t{1} << 40, 8));
}

// --- Typed rejection of corrupt blobs ---------------------------------------

TEST(SnapshotFormat, RejectsBadMagic) {
  std::string blob = CanonicalBlob();
  blob[0] = static_cast<char>(blob[0] ^ 0x5a);
  EXPECT_EQ(LoadCode(blob), StatusCode::kInvalidArgument);
}

TEST(SnapshotFormat, RejectsFutureVersion) {
  std::string blob = CanonicalBlob();
  WriteLe32(&blob, 4, machine::kSnapshotVersion + 1);
  EXPECT_EQ(LoadCode(blob), StatusCode::kUnimplemented);
}

TEST(SnapshotFormat, RejectsTruncation) {
  const std::string& blob = CanonicalBlob();
  // Header cut short, payload cut short, and declared-size overshoot.
  EXPECT_EQ(LoadCode(blob.substr(0, 10)), StatusCode::kOutOfRange);
  EXPECT_EQ(LoadCode(blob.substr(0, blob.size() - 5)), StatusCode::kOutOfRange);
  std::string oversize = blob;
  WriteLe64(&oversize, 8, blob.size());  // claims more payload than present
  EXPECT_EQ(LoadCode(oversize), StatusCode::kOutOfRange);
}

TEST(SnapshotFormat, RejectsChecksumDamage) {
  std::string blob = CanonicalBlob();
  const size_t mid = machine::kSnapshotHeaderBytes + (blob.size() / 2);
  blob[mid] = static_cast<char>(blob[mid] ^ 0x01);
  EXPECT_EQ(LoadCode(blob), StatusCode::kInvalidArgument);
}

TEST(SnapshotFormat, RejectsGarbageWithoutCrashing) {
  EXPECT_NE(LoadCode(""), StatusCode::kOk);
  EXPECT_NE(LoadCode("MSNP"), StatusCode::kOk);
  EXPECT_NE(LoadCode(std::string(64, '\xff')), StatusCode::kOk);
}

// 256 seeded mutations: random truncations, random bit flips, and — the
// interesting half — flips with the checksum resealed so the damage reaches
// the decoders instead of dying at the checksum gate. Every load must come
// back with a Status; a crash or ASan report here is the failure.
TEST(SnapshotFormat, FuzzedMutationsNeverCrashTheLoader) {
  const std::string& canonical = CanonicalBlob();
  auto twin = BuildPipeline(kCanonicalSeed);
  Rng rng(0xf022c0deULL);
  int rejected = 0;
  int survived = 0;
  for (int i = 0; i < 256; ++i) {
    std::string mutated = canonical;
    if (i % 4 == 0) {
      mutated.resize(rng.Below(mutated.size()));
    } else {
      const size_t off = rng.Below(mutated.size());
      mutated[off] =
          static_cast<char>(mutated[off] ^ static_cast<char>(1u << rng.Below(8)));
      if (off >= machine::kSnapshotHeaderBytes && rng.Chance(0.5)) {
        ResealChecksum(&mutated);
      }
    }
    sim::RunResult partial;
    const Status status =
        sim::LoadSnapshot(mutated, twin->process.get(), &partial, nullptr, nullptr);
    status.ok() ? ++survived : ++rejected;
  }
  // The exact split is seed-dependent (resealed flips that land in raw page
  // bytes or counters decode fine — only structural damage is rejectable);
  // all truncations and every non-resealed flip must have been caught.
  EXPECT_GT(rejected, 150) << "survived=" << survived;
  EXPECT_GT(survived, 0) << "resealed mutations never reached the decoders";
}

// --- Presence matching and peeking ------------------------------------------

TEST(SimSnapshot, PeeksAndEnforcesComponentPresenceBothWays) {
  // The fault-campaign shape: bare process + kernel + injector.
  sim::Machine machine;
  sim::Process process(&machine);
  ASSERT_TRUE(process.SetupStack().ok());
  ASSERT_TRUE(process.MapRange(sim::kWorkingSetBase, 16, machine::PageFlags::Data()).ok());
  sim::Kernel kernel(&process);
  kernel.Install();
  sim::FaultInjector injector(&process, 0x22);
  const std::string blob = sim::SaveSnapshot(process, nullptr, &kernel, &injector, "presence");

  sim::SnapshotInfo info;
  ASSERT_TRUE(sim::PeekSnapshot(blob, &info).ok());
  EXPECT_EQ(info.label, "presence");
  EXPECT_FALSE(info.has_partial);
  EXPECT_TRUE(info.has_kernel);
  EXPECT_TRUE(info.has_injector);

  sim::Machine twin_machine;
  sim::Process twin(&twin_machine);
  ASSERT_TRUE(twin.SetupStack().ok());
  ASSERT_TRUE(twin.MapRange(sim::kWorkingSetBase, 16, machine::PageFlags::Data()).ok());
  sim::Kernel twin_kernel(&twin);
  twin_kernel.Install();
  sim::FaultInjector twin_injector(&twin, 0);

  // Dropping saved components would silently fork the determinism contract;
  // both partial hand-offs are refused.
  EXPECT_EQ(sim::LoadSnapshot(blob, &twin, nullptr, nullptr, nullptr).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sim::LoadSnapshot(blob, &twin, nullptr, &twin_kernel, nullptr).code(),
            StatusCode::kFailedPrecondition);
  const Status full = sim::LoadSnapshot(blob, &twin, nullptr, &twin_kernel, &twin_injector);
  EXPECT_TRUE(full.ok()) << full.ToString();

  // The mirror image: a process-only blob refuses spurious components.
  const std::string bare = sim::SaveSnapshot(process, nullptr, nullptr, nullptr, "bare");
  EXPECT_EQ(sim::LoadSnapshot(bare, &twin, nullptr, &twin_kernel, &twin_injector).code(),
            StatusCode::kFailedPrecondition);
}

// --- Crash-safe file IO ------------------------------------------------------

TEST(SimSnapshot, FileIoIsAtomicAndTyped) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "snapshot_test_io";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/state.snap";
  ASSERT_TRUE(sim::WriteSnapshotFile(path, CanonicalBlob()).ok());
  auto back = sim::ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), CanonicalBlob());
  // Temp-and-rename leaves exactly the final file, never a .tmp sibling.
  int entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1);
  EXPECT_EQ(sim::ReadSnapshotFile(dir + "/missing.snap").status().code(),
            StatusCode::kNotFound);
}

// --- Golden v1 blob ----------------------------------------------------------
// A committed blob pins the on-disk format: if serialization drifts (field
// added, order changed, cost model recalibrated) this fails loudly, forcing
// either a version bump or a conscious regeneration — never a silent break
// of old checkpoints and crash bundles.

constexpr uint64_t kGoldenSeed = 0x601dULL;
constexpr char kGoldenPath[] = MEMSENTRY_SOURCE_DIR "/tests/data/snapshot-v1.golden";

std::string MakeGoldenBlob(sim::RunResult* partial_out) {
  auto p = BuildPipeline(kGoldenSeed);
  sim::Executor executor(p->process.get(), &p->module);
  sim::RunConfig rc;
  rc.max_instructions = kMidpoint;
  const sim::RunResult partial = executor.Run(rc);
  EXPECT_TRUE(partial.hit_instruction_limit);
  if (partial_out != nullptr) {
    *partial_out = partial;
  }
  return sim::SaveSnapshot(*p->process, &partial, nullptr, nullptr, "golden-v1");
}

TEST(SnapshotFormat, GoldenV1BlobIsStableAndResumable) {
  if (std::getenv("MEMSENTRY_WRITE_GOLDEN") != nullptr) {
    const Status written = sim::WriteSnapshotFile(kGoldenPath, MakeGoldenBlob(nullptr));
    ASSERT_TRUE(written.ok()) << written.ToString();
  }
  auto blob = sim::ReadSnapshotFile(kGoldenPath);
  ASSERT_TRUE(blob.ok()) << "golden snapshot missing; regenerate with\n"
                            "  MEMSENTRY_WRITE_GOLDEN=1 ./snapshot_test";

  // Byte-for-byte: today's serializer must still produce the committed blob.
  EXPECT_EQ(blob.value(), MakeGoldenBlob(nullptr))
      << "snapshot serialization drifted; if deliberate, bump kSnapshotVersion "
         "and regenerate the golden (MEMSENTRY_WRITE_GOLDEN=1)";

  sim::SnapshotInfo info;
  ASSERT_TRUE(sim::PeekSnapshot(blob.value(), &info).ok());
  EXPECT_EQ(info.label, "golden-v1");
  EXPECT_TRUE(info.has_partial);

  // And the blob is live: restore into a twin, resume to completion, and the
  // totals match an uninterrupted run bit-for-bit.
  auto twin = BuildPipeline(kGoldenSeed);
  sim::RunResult partial;
  const Status loaded =
      sim::LoadSnapshot(blob.value(), twin->process.get(), &partial, nullptr, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  sim::Executor resumer(twin->process.get(), &twin->module);
  sim::RunConfig rc;
  const sim::RunResult resumed = resumer.Resume(rc, partial);

  auto straight_pipeline = BuildPipeline(kGoldenSeed);
  sim::Executor straight(straight_pipeline->process.get(), &straight_pipeline->module);
  const sim::RunResult reference = straight.Run(rc);
  EXPECT_EQ(resumed.instructions, reference.instructions);
  EXPECT_EQ(resumed.cycles, reference.cycles);
  EXPECT_EQ(resumed.halted, reference.halted);
  EXPECT_EQ(resumed.fault.has_value(), reference.fault.has_value());
}

// --- Eval-level checkpointing ------------------------------------------------
// The figures pipeline sliced into checkpoint_interval chunks (save + reload
// between slices) must report exactly the numbers of the one-shot run, and
// completed cells must clean their checkpoints up.

TEST(EvalCheckpoint, CheckpointedExperimentIsBitIdentical) {
  namespace fs = std::filesystem;
  const workloads::SpecProfile& profile = workloads::SpecCpu2006()[0];
  eval::ExperimentOptions plain;
  plain.target_instructions = 50'000;
  plain.jobs = 1;
  const eval::ExperimentResult one_shot = eval::RunAddressBasedExperimentFull(
      profile, core::TechniqueKind::kMpx, core::ProtectMode::kReadWrite, plain);

  eval::ExperimentOptions sliced = plain;
  sliced.checkpoint_dir = ::testing::TempDir() + "snapshot_test_ckpt";
  fs::remove_all(sliced.checkpoint_dir);
  fs::create_directories(sliced.checkpoint_dir);
  sliced.checkpoint_interval = 7'000;
  const eval::ExperimentResult resumed = eval::RunAddressBasedExperimentFull(
      profile, core::TechniqueKind::kMpx, core::ProtectMode::kReadWrite, sliced);

  EXPECT_EQ(one_shot.normalized, resumed.normalized);
  EXPECT_EQ(one_shot.base_cycles, resumed.base_cycles);
  EXPECT_EQ(one_shot.prot_cycles, resumed.prot_cycles);
  EXPECT_EQ(one_shot.base_instructions, resumed.base_instructions);
  EXPECT_EQ(one_shot.prot_instructions, resumed.prot_instructions);
  EXPECT_TRUE(fs::directory_iterator(sliced.checkpoint_dir) == fs::directory_iterator())
      << "completed cells must delete their checkpoints";
}

}  // namespace
}  // namespace memsentry

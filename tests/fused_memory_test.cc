// Targeted differential tests for grant-stable superblock fusion (PR 7):
// fused µop runs that extend across kLoad/kStore must bail out — and stay
// bit-identical to the reference interpreter — whenever the grant verdict a
// fused memory op rides becomes stale mid-run. Each scenario here forces a
// specific staleness source at a known point inside a fused run: TLB-miss
// Inserts (every Insert ticks the TLB version), kMprotect page invalidation,
// PKRU writes, injected protection-state corruption, and instruction-budget
// cutoffs landing between a run's memory ops. The broad randomized sweeps
// live in fastpath_differential_test; these are the surgical cases.
#include <memory>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "src/base/fastpath.h"
#include "src/core/memsentry.h"
#include "src/ir/builder.h"
#include "src/sim/decoded.h"
#include "src/sim/executor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/process.h"

namespace memsentry {
namespace {

using base::FastPathMode;
using ir::Builder;
using ir::Module;
using machine::Gpr;
using sim::FaultSite;

class FastPathModeGuard {
 public:
  explicit FastPathModeGuard(FastPathMode mode) : saved_(base::GetFastPathMode()) {
    base::SetFastPathMode(mode);
  }
  ~FastPathModeGuard() { base::SetFastPathMode(saved_); }

 private:
  FastPathMode saved_;
};

struct Snapshot {
  sim::RunResult result;
  machine::TlbStats tlb;
  machine::CacheStats cache;
  machine::MmuStats mmu;
  bool injected = false;
};

void ExpectBitIdentical(const Snapshot& ref, const Snapshot& fast, const std::string& label) {
  SCOPED_TRACE(label);
  const sim::RunResult& a = ref.result;
  const sim::RunResult& b = fast.result;
  EXPECT_EQ(ref.injected, fast.injected);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.halted, b.halted);
  EXPECT_EQ(a.trapped, b.trapped);
  EXPECT_EQ(a.hit_instruction_limit, b.hit_instruction_limit);
  ASSERT_EQ(a.fault.has_value(), b.fault.has_value());
  if (a.fault.has_value()) {
    EXPECT_EQ(a.fault->type, b.fault->type);
    EXPECT_EQ(a.fault->address, b.fault->address);
    EXPECT_EQ(a.fault->access, b.fault->access);
  }
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.syscalls, b.syscalls);
  EXPECT_EQ(a.domain_switches, b.domain_switches);
  EXPECT_EQ(a.instrumentation_instrs, b.instrumentation_instrs);
  EXPECT_EQ(a.instrumentation_cycles, b.instrumentation_cycles);
  EXPECT_EQ(a.SortedSafeAccessRefs(), b.SortedSafeAccessRefs());
  EXPECT_EQ(ref.tlb.hits, fast.tlb.hits);
  EXPECT_EQ(ref.tlb.misses, fast.tlb.misses);
  EXPECT_EQ(ref.tlb.flushes, fast.tlb.flushes);
  EXPECT_EQ(ref.cache.accesses, fast.cache.accesses);
  EXPECT_EQ(ref.cache.l1_hits, fast.cache.l1_hits);
  EXPECT_EQ(ref.cache.l2_hits, fast.cache.l2_hits);
  EXPECT_EQ(ref.cache.l3_hits, fast.cache.l3_hits);
  EXPECT_EQ(ref.cache.dram_accesses, fast.cache.dram_accesses);
  EXPECT_EQ(ref.mmu.accesses, fast.mmu.accesses);
  EXPECT_EQ(ref.mmu.faults, fast.mmu.faults);
  EXPECT_EQ(ref.mmu.walk_memory_touches, fast.mmu.walk_memory_touches);
}

// A nested sweep over `pages` pages, `sweeps` times, with 8 pages per inner
// iteration unrolled into one straight-line body: each fused run crosses 8
// page boundaries, so on the first sweep every one of its memory ops suffers
// a TLB miss whose Insert ticks the version — the grant-stability bailout
// fires *inside* the run, 8 times per iteration. Later sweeps hit the TLB
// (and, past the TLB's 512-entry reach, evict) so hit, miss and eviction
// paths all occur mid-run. Loads and stores alternate to exercise both
// access kinds' grant slots.
Module PageStridingModule(uint64_t pages, uint64_t sweeps) {
  constexpr int kUnroll = 8;
  constexpr uint64_t kPage = 4096;
  Module m;
  Builder b(&m);
  b.CreateFunction("stride");
  const int entry = 0;
  const int outer = b.NewBlock();
  const int inner = b.NewBlock();
  const int latch = b.NewBlock();
  const int exit = b.NewBlock();
  b.SetInsertPoint(0, entry);
  b.MovImm(Gpr::kRcx, sweeps);
  b.Jmp(outer);
  b.SetInsertPoint(0, outer);
  b.MovImm(Gpr::kR9, sim::kWorkingSetBase);
  b.MovImm(Gpr::kR10, pages / kUnroll);
  b.Jmp(inner);
  b.SetInsertPoint(0, inner);
  for (int k = 0; k < kUnroll; ++k) {
    b.Lea(Gpr::kRdx, Gpr::kR9, static_cast<int64_t>(k * kPage));
    if (k % 2 == 0) {
      b.Load(Gpr::kRbx, Gpr::kRdx);
      b.AluRR(Gpr::kRsi, Gpr::kRbx, /*xor=*/2);
    } else {
      b.Store(Gpr::kRdx, Gpr::kRsi);
    }
  }
  b.AddImm(Gpr::kR9, static_cast<int64_t>(kUnroll * kPage));
  b.AddImm(Gpr::kR10, -1);
  b.CondBr(inner);  // falls through to `latch`
  b.SetInsertPoint(0, latch);
  b.AddImm(Gpr::kRcx, -1);
  b.CondBr(outer);  // falls through to `exit`
  b.SetInsertPoint(0, exit);
  b.Halt();
  return m;
}

// Open/access/close PKRU loop: the wrpkru between fused runs changes the
// grant key (PKRU is part of the verdict), so every fused memory op after a
// toggle must re-probe instead of riding a stale verdict.
Module PkruToggleModule(uint64_t iters) {
  Module m;
  Builder b(&m);
  b.CreateFunction("pkru_toggle");
  const int entry = 0;
  const int loop = b.NewBlock();
  const int exit = b.NewBlock();
  b.SetInsertPoint(0, entry);
  b.MovImm(Gpr::kR9, sim::kWorkingSetBase);
  b.MovImm(Gpr::kRcx, iters);
  b.Jmp(loop);
  b.SetInsertPoint(0, loop);
  ir::Instr open;
  open.op = ir::Opcode::kWrpkru;
  open.imm = 0;  // all keys open
  b.Emit(open);
  b.Lea(Gpr::kRdx, Gpr::kR9, 8);
  b.Load(Gpr::kRbx, Gpr::kRdx);
  b.AluRR(Gpr::kRbx, Gpr::kRbx, /*add=*/0);
  b.Store(Gpr::kRdx, Gpr::kRbx);
  ir::Instr close;
  close.op = ir::Opcode::kWrpkru;
  close.imm = 0xfffffffc;  // every key but 0 closed
  b.Emit(close);
  b.AddImm(Gpr::kR9, 4096);
  b.AddImm(Gpr::kRcx, -1);
  b.CondBr(loop);  // falls through to `exit`
  b.SetInsertPoint(0, exit);
  b.Halt();
  return m;
}

// A PKRU write that closes key 0, then a fused Lea+Load: the load — the
// second op of its fused run — must raise kPkeyAccessDisabled at exactly the
// same address under every mode, with the preceding successful access
// already granted.
Module PkruFaultModule() {
  Module m;
  Builder b(&m);
  b.CreateFunction("pkru_fault");
  b.MovImm(Gpr::kR9, sim::kWorkingSetBase);
  b.Load(Gpr::kRbx, Gpr::kR9);  // mints a read grant for the page
  ir::Instr w;
  w.op = ir::Opcode::kWrpkru;
  w.imm = 0xffffffff;  // key 0 closed too: every data access now denied
  b.Emit(w);
  b.Lea(Gpr::kRdx, Gpr::kR9, 16);
  b.Load(Gpr::kRbx, Gpr::kRdx);  // same page, stale grant: must fault
  b.Halt();
  return m;
}

Snapshot RunModule(const Module& module, FastPathMode mode, uint64_t max_instructions,
                   uint64_t pages) {
  FastPathModeGuard guard(mode);
  sim::Machine machine;
  sim::Process process(&machine);
  EXPECT_TRUE(process.SetupStack().ok());
  EXPECT_TRUE(process.MapRange(sim::kWorkingSetBase, pages, machine::PageFlags::Data()).ok());
  Module local = module;  // fresh instance per run, as the bench harnesses do
  sim::Executor executor(&process, &local);
  sim::RunConfig rc;
  rc.max_instructions = max_instructions;
  rc.record_safe_accesses = true;
  Snapshot snap;
  snap.result = executor.Run(rc);
  snap.tlb = process.mmu().tlb().stats();
  snap.cache = process.mmu().dcache().stats();
  snap.mmu = process.mmu().stats();
  return snap;
}

void ExpectAllModesIdentical(const Module& module, uint64_t max_instructions, uint64_t pages,
                             const std::string& label, Snapshot* out_ref = nullptr) {
  const Snapshot ref = RunModule(module, FastPathMode::kOff, max_instructions, pages);
  const Snapshot fast = RunModule(module, FastPathMode::kOn, max_instructions, pages);
  const Snapshot check = RunModule(module, FastPathMode::kCheck, max_instructions, pages);
  ExpectBitIdentical(ref, fast, label + " on-vs-off");
  ExpectBitIdentical(ref, check, label + " check-vs-off");
  if (out_ref != nullptr) {
    *out_ref = ref;
  }
}

TEST(FusedMemory, DecodedFormContainsFusedMemoryRuns) {
  // The admission rule under test actually admits memory ops: without this,
  // every scenario below would vacuously pass on unfused single-op µops.
  sim::Machine machine;
  sim::Process process(&machine);
  const Module m = PageStridingModule(64, 1);
  auto decoded = sim::DecodedModule::Build(m, process);
  ASSERT_NE(decoded, nullptr);
  ASSERT_FALSE(decoded->functions.empty());
  bool found_mixed_run = false;
  for (const sim::Uop& uop : decoded->functions[0].uops) {
    if (!uop.fused) {
      continue;
    }
    int memory_ops = 0;
    int register_ops = 0;
    for (uint32_t i = 0; i < uop.fuse_count; ++i) {
      const sim::RegOp& op = decoded->functions[0].regops[uop.fuse_start + i];
      if (op.is_memory) {
        ++memory_ops;
      } else {
        ++register_ops;
      }
    }
    if (memory_ops >= 2 && register_ops >= 1) {
      found_mixed_run = true;
    }
  }
  EXPECT_TRUE(found_mixed_run)
      << "fusion should produce runs mixing register ops with >= 2 loads/stores";
}

TEST(FusedMemory, TlbMissInsertsInsideFusedRunBitIdentical) {
  // 1024 pages at 2 sweeps: sweep one is all first-touch misses (Insert
  // ticks the version under the feet of the very run that triggered it);
  // sweep two replays through 512-entry TLB reach, so the back half evicts.
  ExpectAllModesIdentical(PageStridingModule(1024, 2), 500'000'000, 1024, "tlb-miss-stride");
  Snapshot ref;
  // A small, fully TLB-resident sweep: later sweeps are pure grant hits.
  ExpectAllModesIdentical(PageStridingModule(64, 4), 500'000'000, 64, "tlb-resident-stride",
                          &ref);
  EXPECT_TRUE(ref.result.halted);
  EXPECT_GT(ref.tlb.hits, 0u);
  EXPECT_GE(ref.tlb.misses, 64u);
}

TEST(FusedMemory, PkruWriteBetweenFusedRunsBitIdentical) {
  Snapshot ref;
  ExpectAllModesIdentical(PkruToggleModule(64), 500'000'000, 64, "pkru-toggle", &ref);
  EXPECT_TRUE(ref.result.halted);
  EXPECT_EQ(ref.result.loads, 64u);
  EXPECT_EQ(ref.result.stores, 64u);
}

TEST(FusedMemory, PkruFaultInsideFusedRunBitIdentical) {
  Snapshot ref;
  ExpectAllModesIdentical(PkruFaultModule(), 500'000'000, 4, "pkru-fault", &ref);
  ASSERT_TRUE(ref.result.fault.has_value());
  EXPECT_EQ(ref.result.fault->type, machine::FaultType::kPkeyAccessDisabled);
  EXPECT_EQ(ref.result.fault->address, sim::kWorkingSetBase + 16);
  // Both loads count (the breakdown tallies attempts; the second faulted).
  EXPECT_EQ(ref.result.loads, 2u);
}

TEST(FusedMemory, BudgetCutoffMidFusedRunBitIdentical) {
  // Odd limits land the clamp between a fused run's memory ops; the partial
  // run (and its mode-portable cursor) must match the reference exactly.
  // Eight sweeps keep the largest limit well inside the run (~1500 instrs).
  const Module m = PageStridingModule(64, 8);
  for (uint64_t limit : {1ull, 5ull, 97ull, 333ull, 1001ull}) {
    Snapshot ref;
    ExpectAllModesIdentical(m, limit, 64, "limit=" + std::to_string(limit), &ref);
    EXPECT_TRUE(ref.result.hit_instruction_limit);
    EXPECT_EQ(ref.result.instructions, limit);
  }
}

TEST(FusedMemory, CutoffResumeAcrossModesBitIdentical) {
  // Cut under the fast path mid-fused-run, resume under the reference
  // interpreter (and vice versa): run(N)+resume == uninterrupted run, bit
  // for bit, across mode boundaries.
  const Module m = PageStridingModule(64, 4);
  const Snapshot whole = RunModule(m, FastPathMode::kOff, 500'000'000, 64);
  ASSERT_TRUE(whole.result.halted);
  const std::pair<FastPathMode, FastPathMode> legs[] = {
      {FastPathMode::kOn, FastPathMode::kOff},
      {FastPathMode::kOff, FastPathMode::kOn},
      {FastPathMode::kOn, FastPathMode::kCheck},
  };
  for (const auto& [cut_mode, resume_mode] : legs) {
    sim::Machine machine;
    sim::Process process(&machine);
    ASSERT_TRUE(process.SetupStack().ok());
    ASSERT_TRUE(process.MapRange(sim::kWorkingSetBase, 64, machine::PageFlags::Data()).ok());
    Module local = m;
    sim::Executor executor(&process, &local);
    sim::RunConfig rc;
    rc.max_instructions = 333;  // lands inside a fused run
    rc.record_safe_accesses = true;
    sim::RunResult partial;
    {
      FastPathModeGuard guard(cut_mode);
      partial = executor.Run(rc);
    }
    ASSERT_TRUE(partial.hit_instruction_limit);
    ASSERT_TRUE(partial.cursor.valid);
    FastPathModeGuard guard(resume_mode);
    rc.max_instructions = 500'000'000;
    Snapshot resumed;
    resumed.result = executor.Resume(rc, partial);
    resumed.tlb = process.mmu().tlb().stats();
    resumed.cache = process.mmu().dcache().stats();
    resumed.mmu = process.mmu().stats();
    ExpectBitIdentical(whole, resumed,
                       std::string("cut=") + base::FastPathModeName(cut_mode) +
                           " resume=" + base::FastPathModeName(resume_mode));
  }
}

// ---- Scenarios that need a registered safe region ----

struct RegionPipeline {
  sim::Machine machine;
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<core::MemSentry> ms;
  VirtAddr region_base = 0;
  Module module;
  bool injected = false;
};

constexpr uint64_t kRegionPages = 16;

// Info-hiding keeps the region plainly accessible (protection is secrecy of
// its address), so fused loads/stores sweep it freely and only injected
// corruption or an explicit kMprotect decides where — and whether — a fault
// lands inside a run.
std::unique_ptr<RegionPipeline> MakeRegionPipeline() {
  auto p = std::make_unique<RegionPipeline>();
  p->process = std::make_unique<sim::Process>(&p->machine);
  EXPECT_TRUE(p->process->SetupStack().ok());
  core::MemSentryConfig config;
  config.technique = core::TechniqueKind::kInfoHide;
  config.options.mode = core::ProtectMode::kReadWrite;
  p->ms = std::make_unique<core::MemSentry>(p->process.get(), config);
  auto region = p->ms->allocator().Alloc("secret", kRegionPages * 4096);
  EXPECT_TRUE(region.ok());
  p->region_base = region.ok() ? region.value()->base : 0;
  return p;
}

std::unique_ptr<RegionPipeline> BuildRegionSweep(std::optional<FaultSite> site, uint64_t seed) {
  auto p = MakeRegionPipeline();
  const VirtAddr base = p->region_base;

  Builder b(&p->module);
  b.CreateFunction("region_sweep");
  const int entry = 0;
  const int loop = b.NewBlock();
  const int exit = b.NewBlock();
  b.SetInsertPoint(0, entry);
  b.MovImm(Gpr::kRcx, 2);  // two sweeps: miss-grant then hit-grant
  b.Jmp(loop);
  b.SetInsertPoint(0, loop);
  b.MovImm(Gpr::kR9, base);
  for (uint64_t k = 0; k < kRegionPages; ++k) {
    b.Lea(Gpr::kRdx, Gpr::kR9, static_cast<int64_t>(k * 4096));
    b.Load(Gpr::kRbx, Gpr::kRdx);
    b.Store(Gpr::kRdx, Gpr::kRbx);
  }
  b.AddImm(Gpr::kRcx, -1);
  b.CondBr(loop);  // falls through to `exit`
  b.SetInsertPoint(0, exit);
  b.Halt();
  EXPECT_TRUE(p->ms->Protect(p->module).ok());

  if (site.has_value()) {
    sim::FaultInjector injector(p->process.get(), seed);
    p->injected = injector.Inject(*site).ok();
  }
  return p;
}

Snapshot RunRegionSweep(FastPathMode mode, std::optional<FaultSite> site, uint64_t seed) {
  FastPathModeGuard guard(mode);
  auto p = BuildRegionSweep(site, seed);
  sim::Executor executor(p->process.get(), &p->module);
  sim::RunConfig rc;
  rc.record_safe_accesses = true;
  Snapshot snap;
  snap.injected = p->injected;
  snap.result = executor.Run(rc);
  snap.tlb = p->process->mmu().tlb().stats();
  snap.cache = p->process->mmu().dcache().stats();
  snap.mmu = p->process->mmu().stats();
  return snap;
}

TEST(FusedMemory, InjectedFaultsInsideFusedRunsBitIdentical) {
  // Every fault site against the region sweep. The whole sweep is one fused
  // run per sweep iteration, so any injected PTE/TLB corruption that faults
  // (or silently revalidates) does so between two fused memory ops. Sites
  // that need state this pipeline lacks (EPT, AES keys, a kernel) fail to
  // inject identically under every mode — the comparison still must hold.
  int injected_sites = 0;
  for (int s = 0; s < sim::kNumFaultSites; ++s) {
    const auto site = static_cast<FaultSite>(s);
    const uint64_t seed = 9'100 + static_cast<uint64_t>(s);
    const Snapshot ref = RunRegionSweep(FastPathMode::kOff, site, seed);
    const Snapshot fast = RunRegionSweep(FastPathMode::kOn, site, seed);
    const Snapshot check = RunRegionSweep(FastPathMode::kCheck, site, seed);
    ExpectBitIdentical(ref, fast, std::string("site=") + sim::FaultSiteName(site) + " on");
    ExpectBitIdentical(ref, check, std::string("site=") + sim::FaultSiteName(site) + " check");
    if (ref.injected) {
      ++injected_sites;
    }
  }
  // The PTE/TLB/PKRU/bounds sites all apply to a plain region pipeline.
  EXPECT_GE(injected_sites, 4);

  // And the lost-mapping site specifically must fault inside the fused run:
  // the sweep touches every region page, so the corrupted one is hit.
  const Snapshot ref = RunRegionSweep(FastPathMode::kOff, FaultSite::kPtePresentClear, 77);
  ASSERT_TRUE(ref.injected);
  ASSERT_TRUE(ref.result.fault.has_value());
  EXPECT_FALSE(ref.result.halted);
}

TEST(FusedMemory, MprotectInvalidationInsideFusedStreamBitIdentical) {
  // kMprotect(0) closes every safe region and invalidates its pages: the
  // TLB version ticks mid-stream and the next fused access to the region
  // must take the slow path and fault, identically in every mode.
  auto run = [&](FastPathMode mode) {
    FastPathModeGuard guard(mode);
    auto p = MakeRegionPipeline();
    Module m;
    Builder b(&m);
    b.CreateFunction("mprotect_cut");
    b.MovImm(Gpr::kR9, p->region_base);
    // Gates must look pass-inserted and pair up, or the domain-gate audit
    // inside Protect() rejects the module.
    ir::Instr open;
    open.op = ir::Opcode::kMprotect;
    open.imm = 1;
    open.flags = ir::kFlagInstrumentation;
    b.Emit(open);
    b.Load(Gpr::kRbx, Gpr::kR9);   // region open: succeeds, mints a grant
    b.Store(Gpr::kR9, Gpr::kRbx);
    ir::Instr close;
    close.op = ir::Opcode::kMprotect;
    close.imm = 0;  // close the region, invalidate + version-tick its pages
    close.flags = ir::kFlagInstrumentation;
    b.Emit(close);
    b.Lea(Gpr::kRdx, Gpr::kR9, 8);
    b.Load(Gpr::kRbx, Gpr::kRdx);  // stale grant must not be honored
    b.Halt();
    EXPECT_TRUE(p->ms->Protect(m).ok());
    sim::Executor executor(p->process.get(), &m);
    sim::RunConfig rc;
    rc.record_safe_accesses = true;
    Snapshot snap;
    snap.result = executor.Run(rc);
    snap.tlb = p->process->mmu().tlb().stats();
    snap.cache = p->process->mmu().dcache().stats();
    snap.mmu = p->process->mmu().stats();
    return snap;
  };
  const Snapshot ref = run(FastPathMode::kOff);
  const Snapshot fast = run(FastPathMode::kOn);
  const Snapshot check = run(FastPathMode::kCheck);
  ExpectBitIdentical(ref, fast, "mprotect-cut on");
  ExpectBitIdentical(ref, check, "mprotect-cut check");
  ASSERT_TRUE(ref.result.fault.has_value()) << "closed region access should fault";
  EXPECT_EQ(ref.result.loads, 2u);  // one granted, one attempted post-close
  EXPECT_GT(ref.tlb.flushes + ref.tlb.misses, 0u);
}

}  // namespace
}  // namespace memsentry

// Regression tests for the sorted-interval safe-region lookup
// (Process::InSafeRegion / FindSafeRegion): the interpreter consults it on
// every recorded load/store, and attack-harness configs register dozens of
// regions — the old linear scan made that quadratic. 64 regions, boundary
// probes, out-of-order registration, live size growth, last-hit cache reuse.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/machine.h"
#include "src/sim/process.h"

namespace memsentry::sim {
namespace {

// Reference oracle: the linear scan the index replaced.
const SafeRegion* LinearFind(const Process& process, VirtAddr va) {
  for (const SafeRegion& r : process.safe_regions()) {
    if (r.Contains(va)) {
      return &r;
    }
  }
  return nullptr;
}

TEST(SafeRegionLookupTest, SixtyFourRegionsMatchLinearScan) {
  Machine machine;
  Process process(&machine);
  // 64 disjoint regions with a 0x1000-byte gap between neighbours; sizes
  // vary so boundaries are not page-uniform.
  std::vector<VirtAddr> bases;
  VirtAddr base = kSafeRegionBase;
  for (int i = 0; i < 64; ++i) {
    const uint64_t size = 0x100 + static_cast<uint64_t>(i) * 0x10;
    process.AddSafeRegion("r" + std::to_string(i), base, size);
    bases.push_back(base);
    base += size + 0x1000;
  }
  ASSERT_EQ(process.safe_regions().size(), 64u);
  // Probe every region's first/last/one-past-last byte plus the gap before
  // it, and check the indexed lookup against the linear oracle.
  for (int i = 0; i < 64; ++i) {
    const SafeRegion& r = process.safe_regions()[static_cast<size_t>(i)];
    for (const VirtAddr va : {r.base, r.base + r.size / 2, r.base + r.size - 1, r.base + r.size,
                              r.base - 1, r.base - 0x800}) {
      EXPECT_EQ(process.InSafeRegion(va), LinearFind(process, va) != nullptr)
          << "region " << i << " va " << std::hex << va;
      EXPECT_EQ(process.FindSafeRegion(va), LinearFind(process, va))
          << "region " << i << " va " << std::hex << va;
    }
  }
  // Far misses on both sides.
  EXPECT_FALSE(process.InSafeRegion(0));
  EXPECT_FALSE(process.InSafeRegion(kSafeRegionBase - 1));
  EXPECT_FALSE(process.InSafeRegion(base + 0x100000));
  EXPECT_EQ(process.FindSafeRegion(base + 0x100000), nullptr);
}

TEST(SafeRegionLookupTest, OutOfOrderRegistration) {
  Machine machine;
  Process process(&machine);
  // Bases inserted in shuffled order: the index must sort them.
  const VirtAddr bases[] = {0x480000005000ULL, 0x480000001000ULL, 0x480000009000ULL,
                            0x480000003000ULL, 0x480000007000ULL};
  for (const VirtAddr b : bases) {
    process.AddSafeRegion("r", b, 0x800);
  }
  for (const VirtAddr b : bases) {
    EXPECT_TRUE(process.InSafeRegion(b));
    EXPECT_TRUE(process.InSafeRegion(b + 0x7ff));
    EXPECT_FALSE(process.InSafeRegion(b + 0x800));
    ASSERT_NE(process.FindSafeRegion(b), nullptr);
    EXPECT_EQ(process.FindSafeRegion(b)->base, b);
  }
  EXPECT_FALSE(process.InSafeRegion(0x480000000000ULL));
}

TEST(SafeRegionLookupTest, SizeGrowthAfterRegistrationIsVisible) {
  // The crypt size sweep mutates region.size after AddSafeRegion; the index
  // orders by base only and must read sizes live.
  Machine machine;
  Process process(&machine);
  SafeRegion& region = process.AddSafeRegion("grows", kSafeRegionBase, 16);
  EXPECT_TRUE(process.InSafeRegion(kSafeRegionBase + 15));
  EXPECT_FALSE(process.InSafeRegion(kSafeRegionBase + 512));
  region.size = 1024;
  EXPECT_TRUE(process.InSafeRegion(kSafeRegionBase + 512));
  EXPECT_TRUE(process.InSafeRegion(kSafeRegionBase + 1023));
  EXPECT_FALSE(process.InSafeRegion(kSafeRegionBase + 1024));
}

TEST(SafeRegionLookupTest, LastHitCacheSurvivesInterleavedProbes) {
  Machine machine;
  Process process(&machine);
  process.AddSafeRegion("a", 0x480000000000ULL, 0x1000);
  process.AddSafeRegion("b", 0x480000002000ULL, 0x1000);
  // Alternate hits between two regions with misses interleaved — exercises
  // cache hit, cache miss -> re-search, and miss-after-hit paths.
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(process.InSafeRegion(0x480000000000ULL + static_cast<uint64_t>(round)));
    EXPECT_TRUE(process.InSafeRegion(0x480000002000ULL + static_cast<uint64_t>(round)));
    EXPECT_FALSE(process.InSafeRegion(0x480000001000ULL + static_cast<uint64_t>(round)));
  }
  EXPECT_EQ(process.FindSafeRegion(0x480000002004ULL)->name, "b");
  EXPECT_EQ(process.FindSafeRegion(0x480000000004ULL)->name, "a");
}

TEST(SafeRegionLookupTest, HandlesAdjacentRegionsWithoutGap) {
  Machine machine;
  Process process(&machine);
  process.AddSafeRegion("lo", 0x480000000000ULL, 0x1000);
  process.AddSafeRegion("hi", 0x480000001000ULL, 0x1000);
  EXPECT_EQ(process.FindSafeRegion(0x480000000fffULL)->name, "lo");
  EXPECT_EQ(process.FindSafeRegion(0x480000001000ULL)->name, "hi");
  EXPECT_EQ(process.FindSafeRegion(0x480000001fffULL)->name, "hi");
  EXPECT_EQ(process.FindSafeRegion(0x480000002000ULL), nullptr);
}

}  // namespace
}  // namespace memsentry::sim

// Figure 3 reproduction: SPEC overhead for instrumenting all stores (-w),
// loads (-r) and both (-rw) with SFI and MPX. Paper: MPX introduces less
// overhead than SFI in (almost) all cases; geomeans 2.8/4/12/17.1/14.7/19.6%.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("fig3_address", argc, argv);
  bench::PrintHeader(
      "Figure 3 — address-based isolation (MPX vs SFI), all loads/stores instrumented");
  const std::vector<double> paper = {1.028, 1.040, 1.120, 1.171, 1.147, 1.196};
  const auto series = eval::RunFigure3(reporter.Options());
  bench::PrintFigure(series, paper);
  reporter.AddFigure("fig3", series, paper);
  return reporter.Finish();
}

// Figure 3 reproduction: SPEC overhead for instrumenting all stores (-w),
// loads (-r) and both (-rw) with SFI and MPX. Paper: MPX introduces less
// overhead than SFI in (almost) all cases; geomeans 2.8/4/12/17.1/14.7/19.6%.
#include "bench/bench_util.h"

int main() {
  using namespace memsentry;
  bench::PrintHeader(
      "Figure 3 — address-based isolation (MPX vs SFI), all loads/stores instrumented");
  const auto series = eval::RunFigure3(bench::DefaultOptions());
  bench::PrintFigure(series, {1.028, 1.040, 1.120, 1.171, 1.147, 1.196});
  return 0;
}

// Table 1 reproduction: the survey of defense systems that depend on memory
// isolation — protections, isolation type, instrumentation points.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/defenses/registry.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  using namespace memsentry::defenses;
  bench::Reporter reporter("table1_defenses", argc, argv);
  std::printf("\n================================================================\n");
  std::printf("Table 1 — defense systems based on memory isolation\n");
  std::printf("================================================================\n");
  std::printf("%-14s %4s %4s %6s %5s  %s\n", "defense", "r", "w", "prob.", "det.",
              "instrumentation points");
  int probabilistic = 0;
  for (const auto& d : SurveyedDefenses()) {
    std::printf("%-14s %4s %4s %6s %5s  %s\n", d.name.c_str(), d.vuln_read ? "x" : "",
                d.vuln_write ? "x" : "", d.probabilistic ? "x" : "",
                d.deterministic ? "x" : "", d.instrumentation_points.c_str());
    probabilistic += d.probabilistic ? 1 : 0;
  }
  std::printf("\n%d of %zu surveyed defenses rely on probabilistic isolation\n",
              probabilistic, SurveyedDefenses().size());
  std::printf("(information hiding) for their safe regions — the paper's motivation.\n");
  // Structural fidelity: the survey must keep matching the paper row counts.
  reporter.AddFidelity("table1/surveyed_defenses",
                       static_cast<double>(SurveyedDefenses().size()), 0.0, 13);
  reporter.AddFidelity("table1/probabilistic", probabilistic, 0.0, 10);
  return reporter.Finish();
}

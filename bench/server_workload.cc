// Multi-tenant server scalability: N protected tenants (1 -> 10,000) served
// under open-loop load, per technique. The deployment the paper sketches —
// a long-lived server guarding per-client session secrets (ERIM's
// nginx/OpenSSL scenario) — measured end to end: requests/sec and
// p50/p99/p999 latency in modeled cycles, with per-ASID TLB and grant-cache
// behavior under real context switching. --quick caps the sweep at 1k
// tenants for the CI gate; the full run adds the 10k point.
#include "bench/bench_util.h"

#include "src/sim/decode_cache.h"
#include "src/workloads/server.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("server_workload", argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  bench::PrintHeader("multi-tenant server workload (open-loop, per-technique scaling)");

  std::vector<int> tenant_counts = {1, 10, 100, 1000};
  if (!quick) {
    tenant_counts.push_back(10000);
  }
  const auto techniques = workloads::AllServerTechniques();
  workloads::ServerConfig base;
  // Scoped to the sweep so the hit-rate metric below reflects exactly this
  // binary's lowering traffic: one decode per technique, every tenant in
  // every cell a hit.
  sim::DecodeCache::Global().ResetStats();
  const auto cells =
      workloads::RunServerSweep(tenant_counts, techniques, base, reporter.Jobs());
  const sim::DecodeCacheStats decode_stats = sim::DecodeCache::Global().stats();

  std::printf("%-10s %8s %14s %12s %12s %12s %8s %8s\n", "technique", "tenants", "req/s",
              "p50 cyc", "p99 cyc", "p999 cyc", "tlb-hit", "switches");
  for (const auto& cell : cells) {
    const workloads::ServerResult& r = cell.result;
    const std::string prefix = std::string("server/") +
                               workloads::ServerTechniqueName(cell.technique) + "/t" +
                               std::to_string(cell.tenants);
    // Everything here is modeled (deterministic) cycles, so throughput and
    // tail latency are fidelity-kind: a perturbation is a real behavioral
    // change, not host noise — exactly what the CI gate must catch.
    reporter.AddFidelity(prefix + "/requests_per_sec", r.requests_per_sec, bench::kGeomeanTol);
    reporter.AddFidelity(prefix + "/p50_cycles", r.p50_latency, bench::kGeomeanTol);
    reporter.AddFidelity(prefix + "/p99_cycles", r.p99_latency, bench::kGeomeanTol);
    reporter.AddFidelity(prefix + "/p999_cycles", r.p999_latency, bench::kGeomeanTol);
    reporter.AddFidelity(prefix + "/faults", static_cast<double>(r.faults), 0.0);
    reporter.AddPerf(prefix + "/total_cycles", r.total_cycles);
    reporter.AddInfo(prefix + "/tlb_hit_rate", r.tlb_hit_rate);
    reporter.AddInfo(prefix + "/grant_hit_rate", r.grant_hit_rate);
    reporter.AddInfo(prefix + "/context_switches", static_cast<double>(r.context_switches));
    reporter.AddInfo(prefix + "/preemptions", static_cast<double>(r.preemptions));
    reporter.AddInfo(prefix + "/resident_vpids", static_cast<double>(r.resident_vpids));
    // Low 53 bits of the per-tenant digest (exactly representable in a
    // double). Info-kind: run-to-run bit-identity is enforced by the
    // determinism tests, not by the baseline gate.
    reporter.AddInfo(prefix + "/digest53",
                     static_cast<double>(r.digest & ((uint64_t{1} << 53) - 1)));
    std::printf("%-10s %8d %14.0f %12.0f %12.0f %12.0f %7.1f%% %8llu\n",
                workloads::ServerTechniqueName(cell.technique), cell.tenants,
                r.requests_per_sec, r.p50_latency, r.p99_latency, r.p999_latency,
                100.0 * r.tlb_hit_rate, static_cast<unsigned long long>(r.context_switches));
  }
  std::printf("(modeled cycles at the calibrated 4 GHz clock; open-loop load %.0f%%;\n"
              " VMFUNC omitted: one EPT per tenant exceeds the 512-entry EPTP list)\n",
              100.0 * base.offered_load);
  // Shared decoded-module cache behavior across the whole sweep: tenants of
  // one technique share a single lowering, so misses == #techniques.
  reporter.AddInfo("microarch/decode_cache_hit_rate", decode_stats.HitRate());
  reporter.AddInfo("microarch/decode_cache_lowerings",
                   static_cast<double>(decode_stats.misses));
  std::printf("decode cache: %.4f hit rate, %llu lowerings\n", decode_stats.HitRate(),
              static_cast<unsigned long long>(decode_stats.misses));
  return reporter.Finish();
}

// The POSIX mprotect baseline (paper Section 1: "20-50x in our experiments"):
// toggling the safe region's protection with a syscall at every call/ret is
// the traditional alternative MemSentry's hardware techniques replace.
#include "bench/bench_util.h"
#include "src/base/stats_util.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("mprotect_baseline", argc, argv);
  bench::PrintHeader("mprotect baseline — page-protection toggling at every call+ret");
  std::printf("%-16s %12s\n", "benchmark", "normalized");
  std::vector<double> values;
  double total_cycles = 0;
  for (const auto& profile : workloads::SpecCpu2006()) {
    const auto r = eval::RunDomainBasedExperimentFull(
        profile, core::TechniqueKind::kMprotect, eval::DomainScenario::kCallRet,
        reporter.Options());
    values.push_back(r.normalized);
    total_cycles += r.prot_cycles;
    reporter.AddFidelity("mprotect/norm/" + profile.name, r.normalized,
                         bench::kPerBenchmarkTol);
    std::printf("%-16s %12.1f\n", profile.name.c_str(), r.normalized);
  }
  std::printf("%-16s %12.1f   (paper: 20-50x)\n", "geomean", GeoMean(values));
  reporter.AddFidelity("mprotect/geomean", GeoMean(values), bench::kGeomeanTol, NAN,
                       "paper: 20-50x on call-dense benchmarks");
  reporter.AddPerf("mprotect/cycles/total", total_cycles);
  return reporter.Finish();
}

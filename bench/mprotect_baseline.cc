// The POSIX mprotect baseline (paper Section 1: "20-50x in our experiments"):
// toggling the safe region's protection with a syscall at every call/ret is
// the traditional alternative MemSentry's hardware techniques replace.
#include "bench/bench_util.h"
#include "src/base/stats_util.h"

int main() {
  using namespace memsentry;
  bench::PrintHeader("mprotect baseline — page-protection toggling at every call+ret");
  std::printf("%-16s %12s\n", "benchmark", "normalized");
  std::vector<double> values;
  for (const auto& profile : workloads::SpecCpu2006()) {
    const double x = eval::RunMprotectBaseline(profile, bench::DefaultOptions());
    values.push_back(x);
    std::printf("%-16s %12.1f\n", profile.name.c_str(), x);
  }
  std::printf("%-16s %12.1f   (paper: 20-50x)\n", "geomean", GeoMean(values));
  return 0;
}

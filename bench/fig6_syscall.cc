// Figure 6 reproduction: domain switches at every system call (TASR-style
// defenses; the paper observed similar results for allocator calls). Paper
// geomeans: MPK 1.1%, VMFUNC 5.5%, crypt 22% — crypt's cost here is the ymm
// reservation tax on FP benchmarks, not the switches themselves.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("fig6_syscall", argc, argv);
  bench::PrintHeader("Figure 6 — domain-based isolation at every system call");
  const std::vector<double> paper = {1.011, 1.055, 1.22};
  const auto series = eval::RunFigure6(reporter.Options());
  bench::PrintFigure(series, paper);
  reporter.AddFigure("fig6", series, paper);
  return reporter.Finish();
}

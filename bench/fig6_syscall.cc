// Figure 6 reproduction: domain switches at every system call (TASR-style
// defenses; the paper observed similar results for allocator calls). Paper
// geomeans: MPK 1.1%, VMFUNC 5.5%, crypt 22% — crypt's cost here is the ymm
// reservation tax on FP benchmarks, not the switches themselves.
#include "bench/bench_util.h"

int main() {
  using namespace memsentry;
  bench::PrintHeader("Figure 6 — domain-based isolation at every system call");
  const auto series = eval::RunFigure6(bench::DefaultOptions());
  bench::PrintFigure(series, {1.011, 1.055, 1.22});
  return 0;
}

// Table 2 reproduction: the applicability matrix, plus the advisor's
// recommendation (Section 6.3 logic) for each representative scenario.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/advisor.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  using namespace memsentry::core;
  bench::Reporter reporter("table2_applicability", argc, argv);
  std::printf("\n================================================================\n");
  std::printf("Table 2 — instrumentation points and applications per isolation type\n");
  std::printf("================================================================\n");
  std::printf("%-15s %-26s %s\n", "isolation", "instrumentation points", "application");
  for (const auto& row : ApplicabilityTable()) {
    std::printf("%-15s %-26s %s\n",
                row.category == Category::kAddressBased ? "Address-based" : "Domain-based",
                row.instrumentation_points.c_str(), row.application.c_str());
  }
  reporter.AddFidelity("table2/rows", static_cast<double>(ApplicabilityTable().size()), 0.0);

  std::printf("\nAdvisor recommendations (Section 6.3 discussion as executable logic):\n");
  struct Named {
    const char* scenario;
    const char* key;
    ScenarioSpec spec;
  };
  const Named scenarios[] = {
      {"shadow stack (every call/ret)", "shadow_stack",
       {.point = InstrumentationPoint::kCallRet, .events_per_kinstr = 25}},
      {"CFI metadata (indirect branches)", "cfi_metadata",
       {.point = InstrumentationPoint::kIndirectBranch, .events_per_kinstr = 3,
        .region_bytes = 4096}},
      {"heap metadata (allocator calls)", "heap_metadata",
       {.point = InstrumentationPoint::kAllocatorCall, .events_per_kinstr = 0.3}},
      {"TASR pointer list (system calls)", "tasr_pointers",
       {.point = InstrumentationPoint::kSyscall, .events_per_kinstr = 0.05}},
      {"private key (16 bytes, rare use)", "private_key",
       {.point = InstrumentationPoint::kMemAccess, .events_per_kinstr = 0.1,
        .region_bytes = 16, .needs_confidentiality = true}},
      {"old CPU (2012), shadow stack", "old_cpu_shadow_stack",
       {.point = InstrumentationPoint::kCallRet, .events_per_kinstr = 25, .cpu_year = 2012}},
      {"future CPU with MPK, CFI metadata", "mpk_cfi_metadata",
       {.point = InstrumentationPoint::kIndirectBranch, .events_per_kinstr = 3,
        .mpk_available = true}},
  };
  for (const auto& [name, key, spec] : scenarios) {
    const Recommendation rec = Advise(spec);
    std::printf("  %-36s -> %-8s (%s)\n", name, TechniqueKindName(rec.primary),
                rec.rationale.substr(0, 80).c_str());
    // The recommended technique, as its enum index: a change in the advisor's
    // Section 6.3 mapping shifts the value and trips the fidelity gate.
    reporter.AddFidelity(std::string("table2/advise/") + key,
                         static_cast<double>(static_cast<int>(rec.primary)), 0.0, NAN,
                         TechniqueKindName(rec.primary));
  }
  return reporter.Finish();
}

// The threat-model experiment (paper Sections 1/2.3): an attacker with an
// arbitrary read/write primitive against every isolation technique. The
// titular result: deterministic isolation survives even when the region's
// address is known; information hiding falls to an allocation oracle.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/attacks/harness.h"
#include "src/attacks/primitives.h"
#include "src/attacks/strategies.h"
#include "src/defenses/mmap_policy.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("attack_matrix", argc, argv);
  std::printf("\n================================================================\n");
  std::printf("Attack matrix — arbitrary R/W primitive vs every technique\n");
  std::printf("================================================================\n");
  std::printf("%-12s %-9s %-13s %-12s %-12s %s\n", "technique", "located", "oracle probes",
              "read", "write", "notes");
  for (const auto& r : attacks::RunAttackMatrix()) {
    std::printf("%-12s %-9s %-13llu %-12s %-12s %s\n",
                core::TechniqueKindName(r.technique),
                r.region_located ? "yes" : "no",
                static_cast<unsigned long long>(r.locate_probes),
                attacks::OutcomeName(r.read_outcome), attacks::OutcomeName(r.write_outcome),
                r.detail.c_str());
    // The security results are the paper's headline claim; any change in an
    // outcome (e.g. a technique suddenly leaking) is a hard fidelity break.
    const std::string prefix = std::string("attack/") + core::TechniqueKindName(r.technique);
    reporter.AddFidelity(prefix + "/located", r.region_located ? 1 : 0, 0.0);
    reporter.AddFidelity(prefix + "/read_outcome",
                         static_cast<double>(static_cast<int>(r.read_outcome)), 0.0, NAN,
                         attacks::OutcomeName(r.read_outcome));
    reporter.AddFidelity(prefix + "/write_outcome",
                         static_cast<double>(static_cast<int>(r.write_outcome)), 0.0, NAN,
                         attacks::OutcomeName(r.write_outcome));
    reporter.AddPerf(prefix + "/locate_probes", static_cast<double>(r.locate_probes), 0.5);
  }
  std::printf("\nDeterministic techniques hand the attacker the region's address and still\n");
  std::printf("hold; the information-hiding baseline is located in a few dozen probes and\n");
  std::printf("fully compromised — no need to hide.\n");

  // Per-strategy disclosure matrix: each published locate strategy against a
  // fresh information-hiding victim, with found/probes pinned as fidelity
  // metrics. The oracle also runs against a MapGuard-guarded victim — the
  // guard pages skew the hole measurement, so the oracle must come up empty.
  std::printf("\n%-22s %-7s %s\n", "locate strategy", "found", "probes");
  struct StrategyRow {
    const char* name;
    bool found;
    uint64_t probes;
  };
  std::vector<StrategyRow> rows;
  {
    // Allocation oracle vs a small hidden region: the headline break.
    sim::Machine machine;
    sim::Process process(&machine);
    core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide, /*seed=*/77);
    auto region = allocator.Alloc("hidden", 8 * kPageSize);
    auto located = attacks::AllocationOracleAttack(process, 8);
    rows.push_back({"alloc-oracle", region.ok() && located.found, located.probes});
  }
  {
    // The same oracle with MapGuard guard pages flanking the region.
    sim::Machine machine;
    sim::Process process(&machine);
    core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide, /*seed=*/77);
    auto region = allocator.Alloc("hidden", 8 * kPageSize);
    defenses::MmapPolicy policy(&process, defenses::MmapPolicyConfig::Strict(), /*seed=*/77);
    (void)policy.InstallGuards();
    auto located = attacks::AllocationOracleAttack(process, 8);
    rows.push_back({"alloc-oracle-guarded", region.ok() && located.found, located.probes});
  }
  {
    // Crash-resistant scan vs a CPI-style 4 GiB reservation: tractable.
    sim::Machine machine;
    sim::Process process(&machine);
    core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide, /*seed=*/5);
    auto region = allocator.Alloc("cpi-region", uint64_t{4} << 30);
    auto technique = core::CreateTechnique(core::TechniqueKind::kInfoHide);
    attacks::ArbitraryRw rw(&process, technique.get());
    auto located = attacks::CrashResistantScan(rw, sim::kStackTop, kAddressSpaceEnd,
                                               /*stride=*/uint64_t{1} << 30,
                                               /*probe_budget=*/1 << 20);
    rows.push_back({"crash-scan-4g", region.ok() && located.found, located.probes});
  }
  {
    // Thread spraying vs a 256 KiB region: density makes scanning work.
    sim::Machine machine;
    sim::Process process(&machine);
    core::SafeRegionAllocator allocator(&process, core::TechniqueKind::kInfoHide, /*seed=*/9);
    const uint64_t kRegionBytes = 256 * 1024;
    auto region = allocator.Alloc("original", kRegionBytes);
    auto technique = core::CreateTechnique(core::TechniqueKind::kInfoHide);
    attacks::ArbitraryRw rw(&process, technique.get());
    auto located = attacks::ThreadSprayingAttack(process, rw, allocator, kRegionBytes,
                                                 /*spray_count=*/512,
                                                 /*probe_budget=*/3'000'000);
    rows.push_back({"thread-spray", region.ok() && located.found, located.probes});
  }
  for (const auto& row : rows) {
    std::printf("%-22s %-7s %llu\n", row.name, row.found ? "yes" : "no",
                static_cast<unsigned long long>(row.probes));
    const std::string prefix = std::string("attack/strategy/") + row.name;
    reporter.AddFidelity(prefix + "/found", row.found ? 1 : 0, 0.0);
    reporter.AddFidelity(prefix + "/probes", static_cast<double>(row.probes), 0.0);
  }
  std::printf("\nMapGuard's guard pages skew the oracle's hole measurement: the guarded\n");
  std::printf("victim stays hidden while the unguarded one falls in the same probe budget.\n");
  return reporter.Finish();
}

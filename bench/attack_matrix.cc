// The threat-model experiment (paper Sections 1/2.3): an attacker with an
// arbitrary read/write primitive against every isolation technique. The
// titular result: deterministic isolation survives even when the region's
// address is known; information hiding falls to an allocation oracle.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/attacks/harness.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("attack_matrix", argc, argv);
  std::printf("\n================================================================\n");
  std::printf("Attack matrix — arbitrary R/W primitive vs every technique\n");
  std::printf("================================================================\n");
  std::printf("%-12s %-9s %-13s %-12s %-12s %s\n", "technique", "located", "oracle probes",
              "read", "write", "notes");
  for (const auto& r : attacks::RunAttackMatrix()) {
    std::printf("%-12s %-9s %-13llu %-12s %-12s %s\n",
                core::TechniqueKindName(r.technique),
                r.region_located ? "yes" : "no",
                static_cast<unsigned long long>(r.locate_probes),
                attacks::OutcomeName(r.read_outcome), attacks::OutcomeName(r.write_outcome),
                r.detail.c_str());
    // The security results are the paper's headline claim; any change in an
    // outcome (e.g. a technique suddenly leaking) is a hard fidelity break.
    const std::string prefix = std::string("attack/") + core::TechniqueKindName(r.technique);
    reporter.AddFidelity(prefix + "/located", r.region_located ? 1 : 0, 0.0);
    reporter.AddFidelity(prefix + "/read_outcome",
                         static_cast<double>(static_cast<int>(r.read_outcome)), 0.0, NAN,
                         attacks::OutcomeName(r.read_outcome));
    reporter.AddFidelity(prefix + "/write_outcome",
                         static_cast<double>(static_cast<int>(r.write_outcome)), 0.0, NAN,
                         attacks::OutcomeName(r.write_outcome));
    reporter.AddPerf(prefix + "/locate_probes", static_cast<double>(r.locate_probes), 0.5);
  }
  std::printf("\nDeterministic techniques hand the attacker the region's address and still\n");
  std::printf("hold; the information-hiding baseline is located in a few dozen probes and\n");
  std::printf("fully compromised — no need to hide.\n");
  return reporter.Finish();
}

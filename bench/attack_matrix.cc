// The threat-model experiment (paper Sections 1/2.3): an attacker with an
// arbitrary read/write primitive against every isolation technique. The
// titular result: deterministic isolation survives even when the region's
// address is known; information hiding falls to an allocation oracle.
#include <cstdio>

#include "src/attacks/harness.h"

int main() {
  using namespace memsentry;
  std::printf("\n================================================================\n");
  std::printf("Attack matrix — arbitrary R/W primitive vs every technique\n");
  std::printf("================================================================\n");
  std::printf("%-12s %-9s %-13s %-12s %-12s %s\n", "technique", "located", "oracle probes",
              "read", "write", "notes");
  for (const auto& r : attacks::RunAttackMatrix()) {
    std::printf("%-12s %-9s %-13llu %-12s %-12s %s\n",
                core::TechniqueKindName(r.technique),
                r.region_located ? "yes" : "no",
                static_cast<unsigned long long>(r.locate_probes),
                attacks::OutcomeName(r.read_outcome), attacks::OutcomeName(r.write_outcome),
                r.detail.c_str());
  }
  std::printf("\nDeterministic techniques hand the attacker the region's address and still\n");
  std::printf("hold; the information-hiding baseline is located in a few dozen probes and\n");
  std::printf("fully compromised — no need to hide.\n");
  return 0;
}

// Section 6.2 sweep: crypt's switch cost grows linearly with the region size
// ("encryption of larger sizes increases linearly on top of this initial
// cost... approximately 15x overhead when protecting a region of 1024
// bytes"). Uses the call/ret scenario on 401.bzip2 (a mid-call-density
// benchmark).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("crypt_size_sweep", argc, argv);
  bench::PrintHeader("crypt region-size sweep (call/ret scenario, 401.bzip2)");
  const auto points = eval::RunCryptSizeSweep(
      *workloads::FindProfile("401.bzip2"), {16, 32, 64, 128, 256, 512, 1024, 2048},
      reporter.Options());
  std::printf("%12s %14s %18s\n", "region bytes", "normalized", "overhead vs 16 B");
  double base_overhead = 0;
  for (const auto& p : points) {
    if (p.region_bytes == 16) {
      base_overhead = p.normalized - 1.0;
    }
    const double relative = base_overhead > 0 ? (p.normalized - 1.0) / base_overhead : 1.0;
    const std::string bytes = std::to_string(p.region_bytes);
    reporter.AddFidelity("crypt_sweep/norm/" + bytes, p.normalized, bench::kPerBenchmarkTol);
    reporter.AddPerf("crypt_sweep/cycles/" + bytes, p.prot_cycles);
    reporter.AddSimulatedInstructions(p.instructions);
    if (p.region_bytes == 1024) {
      reporter.AddFidelity("crypt_sweep/relative_overhead_1024", relative,
                           bench::kPerBenchmarkTol, NAN,
                           "paper: ~15x total overhead at 1024 bytes, linear growth");
    }
    std::printf("%12llu %14.2f %17.1fx\n",
                static_cast<unsigned long long>(p.region_bytes), p.normalized, relative);
  }
  std::printf("(paper: linear growth; ~15x total at 1024 bytes)\n");
  return reporter.Finish();
}

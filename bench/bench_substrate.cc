// google-benchmark microbenchmarks of the substrates themselves (host-side
// performance of the simulator, not simulated cycles): page walks, TLB,
// cache tags, AES, EPT translation, executor throughput.
#include <benchmark/benchmark.h>

#include "src/aes/aes128.h"
#include "src/ir/builder.h"
#include "src/machine/mmu.h"
#include "src/sim/executor.h"
#include "src/vmx/ept.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

void BM_PageTableWalk(benchmark::State& state) {
  machine::PhysicalMemory pmem(1 << 16);
  machine::PageTable pt(&pmem);
  (void)pt.MapNew(0x4000, machine::PageFlags::Data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Walk(0x4000));
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_MmuTlbHit(benchmark::State& state) {
  machine::PhysicalMemory pmem(1 << 16);
  machine::CostModel cost;
  machine::PageTable pt(&pmem);
  machine::Mmu mmu(&pmem, &cost);
  mmu.SetPageTable(&pt);
  (void)pt.MapNew(0x4000, machine::PageFlags::Data());
  machine::Pkru pkru;
  (void)mmu.Access(0x4000, machine::AccessType::kRead, pkru);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmu.Access(0x4000, machine::AccessType::kRead, pkru));
  }
}
BENCHMARK(BM_MmuTlbHit);

void BM_AesEncryptBlock(benchmark::State& state) {
  const aes::KeySchedule keys = aes::ExpandKey(aes::Block{1, 2, 3, 4});
  aes::Block block{9, 8, 7};
  for (auto _ : state) {
    block = aes::EncryptBlock(block, keys);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_AesEncryptBlock);

void BM_EptTranslate(benchmark::State& state) {
  machine::PhysicalMemory pmem(1 << 16);
  vmx::Ept ept(&pmem);
  (void)ept.Map(0x5000, 0x9000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ept.Translate(0x5123, machine::AccessType::kRead));
  }
}
BENCHMARK(BM_EptTranslate);

void BM_ExecutorThroughput(benchmark::State& state) {
  const auto& profile = workloads::SpecCpu2006()[0];
  workloads::SynthOptions synth;
  synth.target_instructions = 100'000;
  const ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);
  for (auto _ : state) {
    sim::Machine machine;
    sim::Process process(&machine);
    (void)workloads::PrepareWorkloadProcess(process, profile);
    sim::Executor executor(&process, &module);
    auto result = executor.Run();
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(result.instructions));
  }
}
BENCHMARK(BM_ExecutorThroughput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memsentry

BENCHMARK_MAIN();

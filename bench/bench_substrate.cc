// google-benchmark microbenchmarks of the substrates themselves (host-side
// performance of the simulator, not simulated cycles): page walks, TLB,
// cache tags, AES, EPT translation, executor throughput.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/aes/aes128.h"
#include "src/ir/builder.h"
#include "src/machine/mmu.h"
#include "src/sim/executor.h"
#include "src/vmx/ept.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

void BM_PageTableWalk(benchmark::State& state) {
  machine::PhysicalMemory pmem(1 << 16);
  machine::PageTable pt(&pmem);
  (void)pt.MapNew(0x4000, machine::PageFlags::Data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Walk(0x4000));
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_MmuTlbHit(benchmark::State& state) {
  machine::PhysicalMemory pmem(1 << 16);
  machine::CostModel cost;
  machine::PageTable pt(&pmem);
  machine::Mmu mmu(&pmem, &cost);
  mmu.SetPageTable(&pt);
  (void)pt.MapNew(0x4000, machine::PageFlags::Data());
  machine::Pkru pkru;
  (void)mmu.Access(0x4000, machine::AccessType::kRead, pkru);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmu.Access(0x4000, machine::AccessType::kRead, pkru));
  }
}
BENCHMARK(BM_MmuTlbHit);

void BM_AesEncryptBlock(benchmark::State& state) {
  const aes::KeySchedule keys = aes::ExpandKey(aes::Block{1, 2, 3, 4});
  aes::Block block{9, 8, 7};
  for (auto _ : state) {
    block = aes::EncryptBlock(block, keys);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_AesEncryptBlock);

void BM_EptTranslate(benchmark::State& state) {
  machine::PhysicalMemory pmem(1 << 16);
  vmx::Ept ept(&pmem);
  (void)ept.Map(0x5000, 0x9000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ept.Translate(0x5123, machine::AccessType::kRead));
  }
}
BENCHMARK(BM_EptTranslate);

void BM_ExecutorThroughput(benchmark::State& state) {
  const auto& profile = workloads::SpecCpu2006()[0];
  workloads::SynthOptions synth;
  synth.target_instructions = 100'000;
  const ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);
  // Decode once and share: the executor validates the decode against the
  // live (module, cost model) state each Run, so this measures steady-state
  // interpreter throughput rather than per-iteration decode cost.
  std::shared_ptr<const sim::DecodedModule> decoded;
  for (auto _ : state) {
    sim::Machine machine;
    sim::Process process(&machine);
    (void)workloads::PrepareWorkloadProcess(process, profile);
    sim::Executor executor(&process, &module);
    if (decoded == nullptr) {
      decoded = sim::DecodedModule::Build(module, process);
    }
    executor.SetDecoded(decoded);
    auto result = executor.Run();
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(result.instructions));
  }
}
BENCHMARK(BM_ExecutorThroughput)->Unit(benchmark::kMillisecond);

// Forwards console output unchanged while mirroring each run's host-side
// real time into the machine-readable report. Host wall clock is
// environment-dependent, so these land as info metrics: recorded for the
// perf trajectory, never gated.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::Reporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      out_->AddInfo("substrate/" + run.benchmark_name() + "/real_ns",
                    run.GetAdjustedRealTime());
    }
  }

 private:
  bench::Reporter* out_;
};

}  // namespace
}  // namespace memsentry

int main(int argc, char** argv) {
  memsentry::bench::Reporter reporter("bench_substrate", argc, argv);
  // Strip the suite-wide flags google-benchmark would reject before handing
  // the rest (e.g. --benchmark_min_time) to benchmark::Initialize.
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0 ||
        std::strncmp(argv[i], "--instructions=", 15) == 0 ||
        std::strncmp(argv[i], "--jobs=", 7) == 0) {
      continue;
    }
    filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  memsentry::CapturingReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  return reporter.Finish();
}

// Generative attack campaigns at scale: RunCampaignSuite samples hundreds of
// randomized multi-step campaigns per technique from the step grammar in
// src/attacks/campaign_gen.h and pins every per-technique outcome tally as a
// zero-tolerance fidelity metric. The headline gate is zero-tolerance on
// escapes: under the default configuration (MapGuard mmap policy on, runtime
// audit on) `campaign/<tech>/escaped` and `campaign/escaped_total` are pinned
// at 0.
//
// Weakening knobs prove the defenses are load-bearing and the escape path
// works end-to-end: `--policy=off` drops the mmap-policy layer,
// `--skip-audit` disables the containment audit. Escapes (and budget
// timeouts) are shrunk to minimal reproducers and written as crash bundles
// whose replay spec `memsentry_cli replay-campaign` re-executes bit-for-bit.
// `--allow-escapes` keeps the exit code clean for those deliberately
// weakened runs so CI can harvest the bundles.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/attacks/campaign_gen.h"
#include "src/base/crash_handler.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("attack_campaigns", argc, argv);

  attacks::CampaignSuiteOptions options;
  options.jobs = reporter.Jobs();
  bool allow_escapes = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 0);
    } else if (std::strncmp(argv[i], "--campaigns=", 12) == 0) {
      // Total across techniques, rounded up to a per-technique count.
      const uint64_t total = std::strtoull(argv[i] + 12, nullptr, 0);
      options.campaigns_per_technique =
          (total + core::kNumTechniques - 1) / core::kNumTechniques;
    } else if (std::strcmp(argv[i], "--policy=off") == 0) {
      options.config.mmap_policy = false;
    } else if (std::strcmp(argv[i], "--skip-audit") == 0) {
      options.config.runtime_audit = false;
    } else if (std::strncmp(argv[i], "--step-budget=", 14) == 0) {
      options.config.step_budget = std::strtoull(argv[i] + 14, nullptr, 0);
    } else if (std::strcmp(argv[i], "--allow-escapes") == 0) {
      allow_escapes = true;
    }
  }

  bench::PrintHeader("Attack campaigns — seeded generative adversary vs every technique");
  const uint64_t total_campaigns =
      options.campaigns_per_technique * core::kNumTechniques;
  std::printf("suite seed: 0x%llx   campaigns: %llu (%llu per technique)\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(total_campaigns),
              static_cast<unsigned long long>(options.campaigns_per_technique));
  std::printf("mmap policy: %s   runtime audit: %s   step budget: %llu\n",
              options.config.mmap_policy ? "strict (MapGuard)" : "OFF",
              options.config.runtime_audit ? "on" : "OFF",
              static_cast<unsigned long long>(options.config.step_budget));

  const attacks::CampaignSuiteResult suite = attacks::RunCampaignSuite(options);

  std::printf("\n%-10s %9s %9s %9s %10s %10s %10s\n", "technique", "detected",
              "degraded", "ESCAPED", "timed-out", "steps", "probes");
  for (int k = 0; k < core::kNumTechniques; ++k) {
    const auto kind = static_cast<core::TechniqueKind>(k);
    const attacks::CampaignTally& t = suite.per_technique[static_cast<size_t>(k)];
    std::printf("%-10s %9llu %9llu %9llu %10llu %10llu %10llu\n",
                core::TechniqueKindName(kind),
                static_cast<unsigned long long>(t.detected),
                static_cast<unsigned long long>(t.degraded),
                static_cast<unsigned long long>(t.escaped),
                static_cast<unsigned long long>(t.timed_out),
                static_cast<unsigned long long>(t.steps_run),
                static_cast<unsigned long long>(t.probes));
    const std::string prefix =
        std::string("campaign/") + core::TechniqueKindName(kind);
    // Zero tolerance: any drift in the outcome distribution — one campaign
    // flipping detected->degraded, or worse, anything->escaped — is a
    // containment regression against the committed baseline.
    reporter.AddFidelity(prefix + "/detected", static_cast<double>(t.detected), 0.0);
    reporter.AddFidelity(prefix + "/degraded", static_cast<double>(t.degraded), 0.0);
    reporter.AddFidelity(prefix + "/escaped", static_cast<double>(t.escaped), 0.0, NAN,
                         "silent escapes; pinned at zero under the default config");
    reporter.AddFidelity(prefix + "/timed_out", static_cast<double>(t.timed_out), 0.0);
    reporter.AddFidelity(prefix + "/steps_run", static_cast<double>(t.steps_run), 0.0);
    reporter.AddInfo(prefix + "/probes", static_cast<double>(t.probes));
  }
  reporter.AddFidelity("campaign/escaped_total",
                       static_cast<double>(suite.total_escaped), 0.0, NAN,
                       "escapes across all generated campaigns");
  reporter.AddFidelity("campaign/timed_out_total",
                       static_cast<double>(suite.total_timed_out), 0.0);
  reporter.AddInfo("campaign/seed", static_cast<double>(options.seed));
  reporter.AddInfo("campaign/total", static_cast<double>(total_campaigns));

  // Every anomaly becomes a crash bundle: the shrunk (1-minimal) spec is the
  // replay payload, the original spec rides along for forensics.
  for (const attacks::CampaignAnomaly& anomaly : suite.anomalies) {
    const std::string label = std::string(core::TechniqueKindName(anomaly.spec.technique)) +
                              "/campaign-" + std::to_string(anomaly.spec.index);
    json::Value replay =
        attacks::CampaignToJson(anomaly.shrunk, options.config, anomaly.result.outcome);
    replay.Set("original_steps", static_cast<double>(anomaly.spec.steps.size()));

    base::CrashContext context;
    context.binary = "attack_campaigns";
    context.cell = label;
    context.seed = anomaly.spec.seed;
    context.config_json = reporter.ConfigJson();
    context.replay_json = replay.Dump(0);
    base::SetCrashContext(context);
    const std::string bundle = base::WriteCrashBundle(
        anomaly.result.outcome == attacks::CampaignOutcome::kEscaped
            ? "attack-campaign-escape"
            : "attack-campaign-timeout");
    base::ClearCrashCell();

    std::printf("%s: %s %s (%zu steps, shrunk to %zu) — %s\n",
                attacks::CampaignOutcomeName(anomaly.result.outcome), label.c_str(),
                bundle.empty() ? "(bundle write failed)" : bundle.c_str(),
                anomaly.spec.steps.size(), anomaly.shrunk.steps.size(),
                anomaly.result.note.c_str());
  }

  std::printf("\n%llu detected, %llu degraded, %llu ESCAPED, %llu timed out (of %llu)\n",
              static_cast<unsigned long long>(
                  [&] {
                    uint64_t n = 0;
                    for (const auto& t : suite.per_technique) n += t.detected;
                    return n;
                  }()),
              static_cast<unsigned long long>(
                  [&] {
                    uint64_t n = 0;
                    for (const auto& t : suite.per_technique) n += t.degraded;
                    return n;
                  }()),
              static_cast<unsigned long long>(suite.total_escaped),
              static_cast<unsigned long long>(suite.total_timed_out),
              static_cast<unsigned long long>(total_campaigns));
  std::printf("detected = faulted/refused/diverted; degraded = audit repaired state;\n");
  std::printf("any escape under the default configuration is a test failure and is\n");
  std::printf("written as a replayable crash bundle (memsentry_cli replay-campaign).\n");

  const int report_status = reporter.Finish();
  if (suite.total_escaped > 0 && !allow_escapes) {
    return 1;
  }
  return report_status;
}

// The SafeStack case study (paper Section 6.2): SafeStack relocates the safe
// stack and adds no overhead of its own; hardening it with MemSentry's
// address-based write instrumentation reproduces the Figure 3 -w columns.
#include "bench/bench_util.h"
#include "src/base/stats_util.h"
#include "src/core/memsentry.h"
#include "src/defenses/safestack.h"
#include "src/sim/executor.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

double RunSafeStack(const workloads::SpecProfile& profile, core::TechniqueKind kind,
                    const eval::ExperimentOptions& options) {
  // Baseline: plain program, ordinary stack.
  double base_cycles = 0;
  {
    sim::Machine machine;
    sim::Process process(&machine);
    (void)workloads::PrepareWorkloadProcess(process, profile);
    workloads::SynthOptions synth;
    synth.target_instructions = options.target_instructions;
    ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);
    sim::Executor executor(&process, &module);
    auto result = executor.Run();
    if (!result.halted) return -1;
    base_cycles = result.cycles;
  }
  // SafeStack + MemSentry: stack relocated above the split, all explicit
  // stores instrumented; implicit call/ret pushes stay exempt.
  sim::Machine machine;
  sim::Process process(&machine);
  (void)workloads::PrepareWorkloadProcess(process, profile);
  core::MemSentryConfig config;
  config.technique = kind;
  config.options.mode = core::ProtectMode::kWriteOnly;
  core::MemSentry ms(&process, config);
  auto base = defenses::SafeStackDefense::Install(process, ms.allocator());
  if (!base.ok()) return -1;
  workloads::SynthOptions synth;
  synth.target_instructions = options.target_instructions;
  ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);
  if (!ms.Protect(module).ok()) return -1;
  sim::Executor executor(&process, &module);
  auto result = executor.Run();
  if (!result.halted) return -1;
  return result.cycles / base_cycles;
}

}  // namespace
}  // namespace memsentry

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("safestack_casestudy", argc, argv);
  bench::PrintHeader("SafeStack case study — MemSentry-hardened production shadow stack");
  std::printf("%-16s %10s %10s\n", "benchmark", "MPX-w", "SFI-w");
  std::vector<double> mpx, sfi;
  for (const auto& profile : workloads::SpecCpu2006()) {
    const double m = RunSafeStack(profile, core::TechniqueKind::kMpx, reporter.Options());
    const double s = RunSafeStack(profile, core::TechniqueKind::kSfi, reporter.Options());
    mpx.push_back(m);
    sfi.push_back(s);
    reporter.AddFidelity("safestack/norm/MPX-w/" + profile.name, m, bench::kPerBenchmarkTol);
    reporter.AddFidelity("safestack/norm/SFI-w/" + profile.name, s, bench::kPerBenchmarkTol);
    std::printf("%-16s %10.2f %10.2f\n", profile.name.c_str(), m, s);
  }
  std::printf("%-16s %10.3f %10.3f\n", "geomean", GeoMean(mpx), GeoMean(sfi));
  std::printf("(paper: identical to Figure 3 -w: MPX 1.028, SFI 1.040 — SafeStack itself\n");
  std::printf(" introduces no additional overhead)\n");
  reporter.AddFidelity("safestack/geomean/MPX-w", GeoMean(mpx), bench::kGeomeanTol, 1.028);
  reporter.AddFidelity("safestack/geomean/SFI-w", GeoMean(sfi), bench::kGeomeanTol, 1.040);
  return reporter.Finish();
}

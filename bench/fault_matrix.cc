// Fault-containment matrix: every isolation technique under every applicable
// injected fault (src/sim/fault_injector.h), classified as detected /
// degraded / ESCAPED by the containment verifier (src/eval/fault_campaign.h).
// Every cell's outcome and the total escape count are pinned as zero-
// tolerance fidelity metrics, so a silent-corruption escape anywhere in the
// matrix fails the regression gate. Campaigns are seeded and replay
// bit-for-bit: --seed=N picks the campaign seed (reported as info).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/eval/fault_campaign.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("fault_matrix", argc, argv);

  eval::FaultCampaignOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 0);
    }
  }

  bench::PrintHeader("Fault matrix — injected faults vs every technique");
  std::printf("campaign seed: 0x%llx\n", static_cast<unsigned long long>(options.seed));
  std::printf("%-10s %-26s %-9s %7s %11s %10s  %s\n", "technique", "fault site", "outcome",
              "repairs", "quarantines", "downgrades", "detail");

  const eval::FaultCampaignResult campaign = eval::RunFaultCampaign(options);
  for (const auto& cell : campaign.cells) {
    std::printf("%-10s %-26s %-9s %7d %11d %10d  %s\n",
                core::TechniqueKindName(cell.technique), sim::FaultSiteName(cell.site),
                eval::ContainmentName(cell.outcome), cell.repairs, cell.quarantines,
                cell.downgrades, cell.detail.c_str());
    const std::string prefix = std::string("fault/") +
                               core::TechniqueKindName(cell.technique) + "/" +
                               sim::FaultSiteName(cell.site);
    // Zero tolerance: an outcome shift in any cell (detected->degraded, or
    // worse, anything->escaped) is a containment regression.
    reporter.AddFidelity(prefix + "/outcome",
                         static_cast<double>(static_cast<int>(cell.outcome)), 0.0, NAN,
                         eval::ContainmentName(cell.outcome));
    reporter.AddInfo(prefix + "/repairs", cell.repairs);
    reporter.AddInfo(prefix + "/downgrades", cell.downgrades);
  }

  reporter.AddFidelity("fault/escaped_total", campaign.escaped, 0.0, NAN,
                       "silent-corruption escapes across the whole matrix");
  reporter.AddInfo("fault/detected_total", campaign.detected);
  reporter.AddInfo("fault/degraded_total", campaign.degraded);
  reporter.AddInfo("fault/repairs_total", campaign.repairs);
  reporter.AddInfo("fault/downgrades_total", campaign.downgrades);
  reporter.AddInfo("fault/seed", static_cast<double>(options.seed));

  std::printf("\n%d detected, %d degraded, %d ESCAPED (of %zu cells)\n", campaign.detected,
              campaign.degraded, campaign.escaped, campaign.cells.size());
  std::printf("detected = correct architectural fault or clean errno refusal;\n");
  std::printf("degraded = containment audit repaired/quarantined state or the technique\n");
  std::printf("fell back along its configured chain; any escape is a test failure.\n");

  const int report_status = reporter.Finish();
  return campaign.escaped > 0 ? 1 : report_status;
}

// Fault-containment matrix: every isolation technique under every applicable
// injected fault (src/sim/fault_injector.h), classified as detected /
// degraded / ESCAPED by the containment verifier (src/eval/fault_campaign.h).
// Every cell's outcome and the total escape count are pinned as zero-
// tolerance fidelity metrics, so a silent-corruption escape anywhere in the
// matrix fails the regression gate. Campaigns are seeded and replay
// bit-for-bit: --seed=N picks the campaign seed (reported as info).
//
// Crash bundles: each cell runs with the crash handler's context staged, so
// a crash mid-cell — or --force-crash=<Technique>/<site>, the deterministic
// crash-injection hook — produces a bundle `memsentry_cli replay` can
// re-execute. An ESCAPED cell writes a bundle programmatically too, with the
// expected outcome recorded, so escapes are replayable even though the
// process survives them.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/base/crash_handler.h"
#include "src/eval/fault_campaign.h"

namespace {

// The machine-readable replay spec memsentry_cli consumes. `expected` is
// empty for crashes (replay reproduces the abort) and the containment name
// for escape bundles (replay compares outcomes).
std::string ReplaySpec(const memsentry::eval::FaultCampaignOptions& options,
                       const char* technique, const char* site, const char* expected) {
  using memsentry::json::Value;
  Value spec = Value::Object();
  spec.Set("kind", "fault_cell");
  spec.Set("technique", technique);
  spec.Set("site", site);
  spec.Set("seed", options.seed);
  if (!options.force_crash.empty()) {
    spec.Set("force_crash", options.force_crash);
  }
  if (expected[0] != '\0') {
    spec.Set("expected", expected);
  }
  return spec.Dump(0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("fault_matrix", argc, argv);

  eval::FaultCampaignOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 0);
    } else if (std::strncmp(argv[i], "--force-crash=", 14) == 0) {
      options.force_crash = argv[i] + 14;
    }
  }

  bench::PrintHeader("Fault matrix — injected faults vs every technique");
  std::printf("campaign seed: 0x%llx\n", static_cast<unsigned long long>(options.seed));
  std::printf("%-10s %-26s %-9s %7s %11s %10s  %s\n", "technique", "fault site", "outcome",
              "repairs", "quarantines", "downgrades", "detail");

  // Per-cell loop (rather than RunFaultCampaign) so the crash handler's
  // context names the cell in flight: a crash anywhere inside RunFaultCell
  // produces a bundle that replays exactly that cell.
  eval::FaultCampaignResult campaign;
  for (const auto& [kind, site] : eval::FaultMatrixCells()) {
    const char* technique_name = core::TechniqueKindName(kind);
    const char* site_name = sim::FaultSiteName(site);
    const std::string label = std::string(technique_name) + "/" + site_name;

    base::CrashContext context;
    context.binary = "fault_matrix";
    context.cell = label;
    context.seed = options.seed;
    context.config_json = reporter.ConfigJson();
    context.replay_json = ReplaySpec(options, technique_name, site_name, "");
    base::SetCrashContext(context);

    eval::FaultCellResult cell = eval::RunFaultCell(kind, site, options);

    if (cell.outcome == eval::Containment::kEscaped) {
      // The process survives an escape, so trap-style bundles never fire;
      // write one programmatically with the outcome pinned for replay.
      context.replay_json = ReplaySpec(options, technique_name, site_name, "ESCAPED");
      base::SetCrashContext(context);
      const std::string bundle = base::WriteCrashBundle("fault-matrix-escape");
      if (!bundle.empty()) {
        std::fprintf(stderr, "fault_matrix: escape bundle at %s\n", bundle.c_str());
      }
    }
    base::ClearCrashCell();

    switch (cell.outcome) {
      case eval::Containment::kDetected:
        ++campaign.detected;
        break;
      case eval::Containment::kDegraded:
        ++campaign.degraded;
        break;
      case eval::Containment::kEscaped:
        ++campaign.escaped;
        break;
    }
    campaign.repairs += cell.repairs;
    campaign.downgrades += cell.downgrades;
    campaign.cells.push_back(std::move(cell));
  }

  for (const auto& cell : campaign.cells) {
    std::printf("%-10s %-26s %-9s %7d %11d %10d  %s\n",
                core::TechniqueKindName(cell.technique), sim::FaultSiteName(cell.site),
                eval::ContainmentName(cell.outcome), cell.repairs, cell.quarantines,
                cell.downgrades, cell.detail.c_str());
    const std::string prefix = std::string("fault/") +
                               core::TechniqueKindName(cell.technique) + "/" +
                               sim::FaultSiteName(cell.site);
    // Zero tolerance: an outcome shift in any cell (detected->degraded, or
    // worse, anything->escaped) is a containment regression.
    reporter.AddFidelity(prefix + "/outcome",
                         static_cast<double>(static_cast<int>(cell.outcome)), 0.0, NAN,
                         eval::ContainmentName(cell.outcome));
    reporter.AddInfo(prefix + "/repairs", cell.repairs);
    reporter.AddInfo(prefix + "/downgrades", cell.downgrades);
  }

  reporter.AddFidelity("fault/escaped_total", campaign.escaped, 0.0, NAN,
                       "silent-corruption escapes across the whole matrix");
  reporter.AddInfo("fault/detected_total", campaign.detected);
  reporter.AddInfo("fault/degraded_total", campaign.degraded);
  reporter.AddInfo("fault/repairs_total", campaign.repairs);
  reporter.AddInfo("fault/downgrades_total", campaign.downgrades);
  reporter.AddInfo("fault/seed", static_cast<double>(options.seed));

  std::printf("\n%d detected, %d degraded, %d ESCAPED (of %zu cells)\n", campaign.detected,
              campaign.degraded, campaign.escaped, campaign.cells.size());
  std::printf("detected = correct architectural fault or clean errno refusal;\n");
  std::printf("degraded = containment audit repaired/quarantined state or the technique\n");
  std::printf("fell back along its configured chain; any escape is a test failure.\n");

  const int report_status = reporter.Finish();
  return campaign.escaped > 0 ? 1 : report_status;
}

// Microarchitectural profile of the SPEC stand-ins: CPI, TLB hit rate and
// cache-level distribution per benchmark, plus the instrumented-instruction
// share under MPX-rw. Validates that the synthetic workloads reproduce the
// *reasons* behind the figures (memory-bound benchmarks hide checks, hot
// benchmarks expose them), not just the outcomes.
#include "bench/bench_util.h"
#include "src/core/memsentry.h"
#include "src/sim/executor.h"
#include "src/workloads/synth.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("microarch_stats", argc, argv);
  bench::PrintHeader("Workload microarchitecture — why the figures look the way they do");
  std::printf("%-16s %6s %8s %7s %7s %7s %7s %9s\n", "benchmark", "CPI", "TLB-hit", "L1%",
              "L2%", "L3%", "DRAM%", "instr.share");
  // Suite-wide microarchitectural hit rates, reported as info metrics: they
  // explain the modeled cycle counts (and the translation fast path's
  // effectiveness) without gating — the fidelity/perf metrics above already
  // pin the numbers that matter.
  double tlb_hits = 0, tlb_total = 0;
  double l1_hits = 0, cache_total = 0;
  double grant_hits = 0, grant_total = 0;
  for (const auto& profile : workloads::SpecCpu2006()) {
    sim::Machine machine;
    sim::Process process(&machine);
    (void)workloads::PrepareWorkloadProcess(process, profile);
    core::MemSentryConfig config;
    config.technique = core::TechniqueKind::kMpx;
    core::MemSentry ms(&process, config);
    (void)ms.allocator().Alloc("region", 4096);
    workloads::SynthOptions synth;
    synth.target_instructions = 300'000;
    ir::Module module = workloads::SynthesizeSpecProgram(profile, synth);
    (void)ms.Protect(module);
    process.mmu().ResetStats();
    sim::Executor executor(&process, &module);
    auto result = executor.Run();
    if (!result.halted) {
      std::printf("%-16s  !! faulted\n", profile.name.c_str());
      continue;
    }
    const auto& tlb = process.mmu().tlb().stats();
    const auto& cache = process.mmu().dcache().stats();
    const auto& grants = process.mmu().grant_stats();
    const double accesses = static_cast<double>(cache.accesses);
    tlb_hits += static_cast<double>(tlb.hits);
    tlb_total += static_cast<double>(tlb.hits + tlb.misses);
    l1_hits += static_cast<double>(cache.l1_hits);
    cache_total += accesses;
    grant_hits += static_cast<double>(grants.hits);
    grant_total += static_cast<double>(grants.hits + grants.misses);
    const double instr_share = 100.0 * static_cast<double>(result.instrumentation_instrs) /
                               static_cast<double>(result.instructions);
    reporter.AddFidelity("microarch/cpi/" + profile.name, result.Cpi(),
                         bench::kMicroLatencyTol);
    reporter.AddFidelity("microarch/instr_share/" + profile.name, instr_share,
                         bench::kPerBenchmarkTol);
    reporter.AddPerf("microarch/cycles/" + profile.name, result.cycles);
    reporter.AddSimulatedInstructions(static_cast<double>(result.instructions));
    std::printf("%-16s %6.2f %7.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %8.1f%%\n",
                profile.name.c_str(), result.Cpi(), 100.0 * tlb.HitRate(),
                100.0 * static_cast<double>(cache.l1_hits) / accesses,
                100.0 * static_cast<double>(cache.l2_hits) / accesses,
                100.0 * static_cast<double>(cache.l3_hits) / accesses,
                100.0 * static_cast<double>(cache.dram_accesses) / accesses, instr_share);
  }
  reporter.AddInfo("microarch/tlb_hit_rate", tlb_total > 0 ? tlb_hits / tlb_total : 0.0);
  reporter.AddInfo("microarch/l1_hit_rate", cache_total > 0 ? l1_hits / cache_total : 0.0);
  reporter.AddInfo("microarch/grant_cache_hit_rate",
                   grant_total > 0 ? grant_hits / grant_total : 0.0);
  std::printf("\n(MPX-rw build; instr.share = fraction of executed instructions that are\n");
  std::printf(" MemSentry-inserted; memory-bound rows show how DRAM time hides them)\n");
  return reporter.Finish();
}

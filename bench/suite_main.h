// The shared main() for every suite bench binary: look up the registered
// workload (src/suite/workloads.h), run it the way the historical monolithic
// binary did — cells fanned over --jobs, serial where crash contexts demand
// it, tables printed, crash bundles staged — and emit the identical metric
// stream through bench::Reporter. The binaries stay as crash-isolation and
// ad-hoc entry points; tools/bench_runner --engine=inproc runs the same
// workloads in one warm process instead.
#ifndef MEMSENTRY_BENCH_SUITE_MAIN_H_
#define MEMSENTRY_BENCH_SUITE_MAIN_H_

#include <cstdio>

#include "bench/bench_util.h"
#include "src/suite/workloads.h"

namespace memsentry::bench {

inline int SuiteMain(const char* name, int argc, char** argv) {
  Reporter reporter(name, argc, argv);
  const eval::Workload* workload = suite::FindSuiteWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "%s: not a registered suite workload\n", name);
    return 2;
  }
  eval::WorkloadOptions options;
  options.experiment = reporter.Options();
  options.print = true;
  options.crash_contexts = true;
  eval::ParseWorkloadArgs(argc, argv, options);
  options.extra["config_json"] = reporter.ConfigJson();
  const int status = eval::RunWorkloadStandalone(*workload, options, reporter.builder());
  const int finish = reporter.Finish();
  return status != 0 ? status : finish;
}

}  // namespace memsentry::bench

#endif  // MEMSENTRY_BENCH_SUITE_MAIN_H_

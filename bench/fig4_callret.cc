// Figure 4 reproduction: domain switches at every call and ret — the shadow
// stack scenario, using the real ShadowStackPass as the defense. Paper
// geomeans: MPK 130%, VMFUNC 357%, crypt 217%; peaks 20.79x / 28.27x for
// VMFUNC on the call-dense C++ benchmarks (povray, xalancbmk).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("fig4_callret", argc, argv);
  bench::PrintHeader("Figure 4 — domain-based isolation at every call+ret (shadow stack)");
  const std::vector<double> paper = {2.30, 4.57, 3.17};
  const auto series = eval::RunFigure4(reporter.Options());
  bench::PrintFigure(series, paper);
  reporter.AddFigure("fig4", series, paper);
  return reporter.Finish();
}

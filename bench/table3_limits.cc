// Table 3 reproduction: architectural limits of each isolation technique —
// maximum domains and minimum granularity.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/technique.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  using namespace memsentry::core;
  bench::Reporter reporter("table3_limits", argc, argv);
  std::printf("\n================================================================\n");
  std::printf("Table 3 — limitations of memory isolation techniques\n");
  std::printf("================================================================\n");
  std::printf("%-12s %-12s %-12s %-6s %s\n", "technique", "max domains", "granularity",
              "since", "notes");
  for (int k = 0; k < kNumTechniques; ++k) {
    const auto kind = static_cast<TechniqueKind>(k);
    auto technique = CreateTechnique(kind);
    const TechniqueLimits limits = technique->limits();
    char domains[16];
    if (limits.max_domains == 0) {
      std::snprintf(domains, sizeof(domains), "unbounded");
    } else {
      std::snprintf(domains, sizeof(domains), "%d", limits.max_domains);
    }
    char gran[16];
    if (limits.granularity >= 4096) {
      std::snprintf(gran, sizeof(gran), "page");
    } else {
      std::snprintf(gran, sizeof(gran), "%llu bytes",
                    static_cast<unsigned long long>(limits.granularity));
    }
    std::printf("%-12s %-12s %-12s %-6d %s\n", TechniqueKindName(kind), domains, gran,
                limits.hw_since_year, limits.notes.c_str());
    const std::string prefix = std::string("table3/") + TechniqueKindName(kind);
    reporter.AddFidelity(prefix + "/max_domains", limits.max_domains, 0.0);
    reporter.AddFidelity(prefix + "/granularity",
                         static_cast<double>(limits.granularity), 0.0);
  }
  return reporter.Finish();
}

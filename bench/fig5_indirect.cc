// Figure 5 reproduction: domain switches at every indirect branch — CFI and
// layout-randomization defenses. Paper geomeans: MPK 34%, VMFUNC 82%,
// crypt 60%; peak 10.61x.
#include "bench/bench_util.h"

int main() {
  using namespace memsentry;
  bench::PrintHeader("Figure 5 — domain-based isolation at every indirect branch (CFI)");
  const auto series = eval::RunFigure5(bench::DefaultOptions());
  bench::PrintFigure(series, {1.34, 1.82, 1.60});
  return 0;
}

// Figure 5 reproduction: domain switches at every indirect branch — CFI and
// layout-randomization defenses. Paper geomeans: MPK 34%, VMFUNC 82%,
// crypt 60%; peak 10.61x.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("fig5_indirect", argc, argv);
  bench::PrintHeader("Figure 5 — domain-based isolation at every indirect branch (CFI)");
  const std::vector<double> paper = {1.34, 1.82, 1.60};
  const auto series = eval::RunFigure5(reporter.Options());
  bench::PrintFigure(series, paper);
  reporter.AddFigure("fig5", series, paper);
  return reporter.Finish();
}

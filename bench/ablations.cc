// Ablation benches for the design choices DESIGN.md calls out:
//   1. single-bound MPX check vs GCC-style double-sided checking,
//   2. BNDPRESERVE on vs off (bound reloads at legacy branches),
//   3. SFI mask hoisted vs rematerialized per access,
//   4. MPK integrity-only (WD) vs confidentiality (AD) closing.
#include "bench/bench_util.h"
#include "src/core/memsentry.h"
#include "src/ir/pointsto.h"
#include "src/sim/executor.h"
#include "src/sim/profiling.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

double Fig3Point(const workloads::SpecProfile& profile, core::TechniqueKind kind,
                 core::InstrumentOptions instrument, eval::ExperimentOptions options) {
  options.instrument = instrument;
  return eval::RunAddressBasedExperiment(profile, kind, instrument.mode, options);
}

}  // namespace
}  // namespace memsentry

int main(int argc, char** argv) {
  using namespace memsentry;
  bench::Reporter reporter("ablations", argc, argv);
  bench::PrintHeader("Ablations — the design choices behind MemSentry's numbers");

  const auto& gcc = *workloads::FindProfile("403.gcc");
  const auto& hmmer = *workloads::FindProfile("456.hmmer");

  std::printf("\n[1] MPX: single upper-bound check (MemSentry) vs double-sided (GCC style)\n");
  std::printf("%-16s %14s %14s\n", "benchmark", "single bndcu", "bndcl+bndcu");
  for (const auto* profile : {&gcc, &hmmer}) {
    core::InstrumentOptions single;
    single.mode = core::ProtectMode::kReadWrite;
    core::InstrumentOptions both = single;
    both.mpx_double_bounds = true;
    const double s = Fig3Point(*profile, core::TechniqueKind::kMpx, single, reporter.Options());
    const double b = Fig3Point(*profile, core::TechniqueKind::kMpx, both, reporter.Options());
    reporter.AddFidelity("ablate/mpx_single/" + profile->name, s, bench::kPerBenchmarkTol);
    reporter.AddFidelity("ablate/mpx_double/" + profile->name, b, bench::kPerBenchmarkTol);
    std::printf("%-16s %14.3f %14.3f\n", profile->name.c_str(), s, b);
  }
  std::printf("(the paper dismisses MPX-as-bounds-checker for its overhead; the single\n");
  std::printf(" partition check is what makes it competitive — Section 5.4/6.1)\n");

  std::printf("\n[2] SFI: hoisted mask vs rematerialized per access\n");
  std::printf("%-16s %14s %14s\n", "benchmark", "hoisted", "rematerialized");
  for (const auto* profile : {&gcc, &hmmer}) {
    core::InstrumentOptions hoisted;
    hoisted.mode = core::ProtectMode::kReadWrite;
    core::InstrumentOptions remat = hoisted;
    remat.sfi_rematerialize_mask = true;
    const double h = Fig3Point(*profile, core::TechniqueKind::kSfi, hoisted, reporter.Options());
    const double r = Fig3Point(*profile, core::TechniqueKind::kSfi, remat, reporter.Options());
    reporter.AddFidelity("ablate/sfi_hoisted/" + profile->name, h, bench::kPerBenchmarkTol);
    reporter.AddFidelity("ablate/sfi_remat/" + profile->name, r, bench::kPerBenchmarkTol);
    std::printf("%-16s %14.3f %14.3f\n", profile->name.c_str(), h, r);
  }

  std::printf("\n[3] MPK closing policy: integrity-only (WD) vs confidentiality (AD+WD)\n");
  std::printf("    Both policies cost the same wrpkru pair; what differs is protection:\n");
  std::printf("    WD-only still lets the attacker *read* the region (shadow stacks only\n");
  std::printf("    need integrity; private keys need AD) — Section 4.\n");
  {
    eval::ExperimentOptions options = reporter.Options();
    options.instrument.mode = core::ProtectMode::kWriteOnly;
    const double wd = eval::RunDomainBasedExperiment(gcc, core::TechniqueKind::kMpk,
                                                     eval::DomainScenario::kCallRet, options);
    options.instrument.mode = core::ProtectMode::kReadWrite;
    const double ad = eval::RunDomainBasedExperiment(gcc, core::TechniqueKind::kMpk,
                                                     eval::DomainScenario::kCallRet, options);
    reporter.AddFidelity("ablate/mpk_wd_only", wd, bench::kPerBenchmarkTol);
    reporter.AddFidelity("ablate/mpk_ad_wd", ad, bench::kPerBenchmarkTol);
    std::printf("    403.gcc: WD-only %.3f vs AD+WD %.3f (identical switch cost)\n", wd, ad);
  }

  std::printf("\n[4] SGX as a domain technique (why the paper rules it out)\n");
  {
    eval::ExperimentOptions options = reporter.Options();
    const double sgx = eval::RunDomainBasedExperiment(gcc, core::TechniqueKind::kSgx,
                                                      eval::DomainScenario::kSyscall, options);
    const double mpk = eval::RunDomainBasedExperiment(gcc, core::TechniqueKind::kMpk,
                                                      eval::DomainScenario::kSyscall, options);
    reporter.AddFidelity("ablate/sgx_syscall", sgx, bench::kPerBenchmarkTol);
    reporter.AddFidelity("ablate/mpk_syscall", mpk, bench::kPerBenchmarkTol);
    std::printf("    403.gcc syscall scenario: SGX %.2f vs MPK %.3f\n", sgx, mpk);
    std::printf("    (7664-cycle crossings: ~70x an MPK switch — Section 3.1)\n");
  }

  std::printf("\n[5] BNDPRESERVE on vs off\n");
  {
    // Without BNDPRESERVE every legacy branch resets the bound registers and
    // the next check reloads bnd0 from the bound table (Section 5.4).
    auto run = [&](bool preserve) {
      eval::ExperimentOptions options = reporter.Options();
      sim::Machine m1;
      sim::Process base_proc(&m1);
      (void)workloads::PrepareWorkloadProcess(base_proc, gcc);
      workloads::SynthOptions synth;
      synth.target_instructions = options.target_instructions;
      ir::Module module = workloads::SynthesizeSpecProgram(gcc, synth);
      sim::Executor base_exec(&base_proc, &module);
      const double base = base_exec.Run().cycles;

      sim::Machine m2;
      sim::Process proc(&m2);
      (void)workloads::PrepareWorkloadProcess(proc, gcc);
      core::MemSentryConfig config;
      config.technique = core::TechniqueKind::kMpx;
      core::MemSentry ms(&proc, config);
      (void)ms.allocator().Alloc("region", 4096);
      ir::Module inst = workloads::SynthesizeSpecProgram(gcc, synth);
      (void)ms.Protect(inst);
      proc.regs().bnd_preserve = preserve;
      sim::Executor exec(&proc, &inst);
      return exec.Run().cycles / base;
    };
    const double on = run(true);
    const double off = run(false);
    reporter.AddFidelity("ablate/bndpreserve_on", on, bench::kPerBenchmarkTol);
    reporter.AddFidelity("ablate/bndpreserve_off", off, bench::kPerBenchmarkTol);
    std::printf("    403.gcc MPX-rw: BNDPRESERVE on %.3f vs off %.3f\n", on, off);
    std::printf("    (off: every branch resets bnd0; checks pay bound-table reloads --\n");
    std::printf("     and between reset and reload, checks pass vacuously: the flag is\n");
    std::printf("     a correctness requirement, not just a performance one)\n");
  }

  std::printf("\n[6] Program-data protection: static (DSA) vs dynamic (PIN) points-to\n");
  {
    // A program with hidden safe-region accesses, half through memory-loaded
    // pointers. Compare how many instructions each analysis hands MemSentry.
    sim::Machine m1;
    sim::Process process(&m1);
    (void)workloads::PrepareWorkloadProcess(process, gcc);
    core::MemSentryConfig config;
    config.technique = core::TechniqueKind::kMpk;
    core::MemSentry ms(&process, config);
    auto region = ms.allocator().Alloc("program-data", 4096);
    workloads::SynthOptions synth;
    synth.target_instructions = 200'000;
    synth.safe_accesses_per_ki = 4;
    synth.safe_region_base = region.value()->base;
    ir::Module base_module = workloads::SynthesizeSpecProgram(gcc, synth);
    const uint64_t mem_ops =
        base_module.CountIf([](const ir::Instr& i) { return i.IsMemoryAccess(); });

    ir::Module dynamic_module = base_module;
    {
      sim::Machine m2;
      sim::Process scratch(&m2);
      (void)workloads::PrepareWorkloadProcess(scratch, gcc);
      (void)scratch.MapRange(region.value()->base, 1, machine::PageFlags::Data());
      scratch.AddSafeRegion("program-data", region.value()->base, 4096);
      (void)sim::DynamicPointsTo(scratch, dynamic_module);
    }
    const uint64_t dynamic_count =
        dynamic_module.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });

    ir::Module static_module = base_module;
    const ir::SafeRange range{region.value()->base, 4096};
    (void)ir::AnalyzePointsTo(static_module, std::span(&range, 1), /*conservative=*/true,
                              /*annotate=*/true);
    const uint64_t static_count =
        static_module.CountIf([](const ir::Instr& i) { return i.IsSafeAccess(); });

    reporter.AddFidelity("ablate/pointsto/memory_ops", static_cast<double>(mem_ops), 0.02);
    reporter.AddFidelity("ablate/pointsto/dynamic_annotated",
                         static_cast<double>(dynamic_count), 0.02);
    reporter.AddFidelity("ablate/pointsto/static_annotated",
                         static_cast<double>(static_count), 0.02);
    std::printf("    memory ops in program:        %llu\n",
                static_cast<unsigned long long>(mem_ops));
    std::printf("    dynamic profile annotates:    %llu (exact for this input)\n",
                static_cast<unsigned long long>(dynamic_count));
    std::printf("    static conservative annotates:%llu (over-approximation: %.1fx)\n",
                static_cast<unsigned long long>(static_count),
                static_cast<double>(static_count) / static_cast<double>(dynamic_count));
    std::printf("    (paper Section 5.5: DSA is overly conservative; the PIN-style run\n");
    std::printf("     is exact but under-approximates across inputs)\n");
  }
  return reporter.Finish();
}

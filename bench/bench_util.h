// Shared helpers for the per-figure benchmark binaries. Every binary prints
// the paper's reference values next to the reproduced ones so the comparison
// is one `diff`-shaped read — and, through bench::Reporter, emits the same
// numbers as a machine-readable JSON report (`--json=<path>`) that
// tools/bench_runner merges into BENCH_RESULTS.json and gates against
// bench/baselines/.
#ifndef MEMSENTRY_BENCH_BENCH_UTIL_H_
#define MEMSENTRY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <string>
#include <vector>

#include "src/base/crash_handler.h"
#include "src/base/fastpath.h"
#include "src/base/json.h"
#include "src/eval/figures.h"
#include "src/eval/regression_gate.h"
#include "src/eval/report_builder.h"
#include "src/workloads/spec_profiles.h"

namespace memsentry::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// Prints one figure as rows of benchmarks x configuration columns.
inline void PrintFigure(const std::vector<eval::FigureSeries>& series,
                        const std::vector<double>& paper_geomeans) {
  std::printf("%-16s", "benchmark");
  for (const auto& s : series) {
    std::printf("%10s", s.config.c_str());
  }
  std::printf("\n");
  const auto profiles = workloads::SpecCpu2006();
  for (size_t b = 0; b < profiles.size(); ++b) {
    std::printf("%-16s", profiles[b].name.c_str());
    for (const auto& s : series) {
      std::printf("%10.2f", s.normalized[b]);
    }
    std::printf("\n");
  }
  std::printf("%-16s", "geomean");
  for (const auto& s : series) {
    std::printf("%10.3f", s.geomean);
  }
  std::printf("\n%-16s", "paper geomean");
  for (size_t i = 0; i < series.size(); ++i) {
    if (i < paper_geomeans.size()) {
      std::printf("%10.3f", paper_geomeans[i]);
    } else {
      std::printf("%10s", "-");
    }
  }
  std::printf("\n(normalized runtime; 1.00 = uninstrumented baseline)\n");
}

inline eval::ExperimentOptions DefaultOptions() {
  eval::ExperimentOptions options;
  options.target_instructions = 400'000;
  return options;
}

// The tolerance constants live in src/eval/report_builder.h so the campaign
// engine's workloads share them; these aliases keep the bench:: spellings.
inline constexpr double kGeomeanTol = eval::kGeomeanTol;
inline constexpr double kPerBenchmarkTol = eval::kPerBenchmarkTol;
inline constexpr double kCyclesTol = eval::kCyclesTol;
inline constexpr double kMicroLatencyTol = eval::kMicroLatencyTol;
inline constexpr double kHostThroughputTol = eval::kHostThroughputTol;

// Collects a benchmark binary's results as named metrics (through an
// eval::ReportBuilder) and writes the machine-readable report when the
// binary was invoked with --json=<path>. Metric names are slash-paths,
// unique across the whole suite because each binary prefixes its own
// figure/table (e.g. "fig3/geomean/MPX-w").
class Reporter {
 public:
  Reporter(std::string binary, int argc, char** argv)
      : binary_(std::move(binary)), start_(std::chrono::steady_clock::now()) {
    std::string bundle_root = "crash_bundles";
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--json=", 7) == 0) {
        json_path_ = arg + 7;
      } else if (std::strncmp(arg, "--instructions=", 15) == 0) {
        instructions_ = std::strtoull(arg + 15, nullptr, 10);
      } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
        jobs_ = static_cast<int>(std::strtol(arg + 7, nullptr, 10));
      } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
        checkpoint_dir_ = arg + 17;
      } else if (std::strncmp(arg, "--checkpoint-interval=", 22) == 0) {
        checkpoint_interval_ = std::strtoull(arg + 22, nullptr, 10);
      } else if (std::strncmp(arg, "--bundle-root=", 14) == 0) {
        bundle_root = arg + 14;
      }
    }
    if (!checkpoint_dir_.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(checkpoint_dir_, ec);
    }
    // Any crash from here on produces a replayable bundle tagged with this
    // binary's run configuration. Retention first: bundles from earlier runs
    // are trimmed to the caps, anything stamped from this instant on is
    // protected.
    const base::CrashGcStats gc = base::CollectCrashBundles(
        bundle_root, base::CrashBundleCaps{}, static_cast<int64_t>(std::time(nullptr)));
    if (gc.bundles_removed > 0) {
      std::fprintf(stderr, "[%s] crash-bundle gc: removed %zu stale bundle(s) (%llu bytes)\n",
                   binary_.c_str(), gc.bundles_removed,
                   static_cast<unsigned long long>(gc.bytes_removed));
    }
    base::InstallCrashHandler(bundle_root);
    base::CrashContext context;
    context.binary = binary_;
    context.seed = Options().seed;
    context.config_json = ConfigJson();
    base::SetCrashContext(context);
  }

  // The run configuration as a JSON object, recorded in crash-bundle
  // manifests so a replay can reconstruct the exact cell.
  std::string ConfigJson() const {
    json::Value config = json::Value::Object();
    config.Set("instructions", TargetInstructions());
    config.Set("jobs", jobs_);
    config.Set("fastpath", base::FastPathModeName(base::GetFastPathMode()));
    return config.Dump(0);
  }

  // DefaultOptions() with any --instructions= / --jobs= override applied.
  // Every binary routes its workload budget through this so bench_runner
  // --quick can shrink the whole suite uniformly and --jobs can fan the
  // sweeps out (results are bit-identical for every jobs value).
  eval::ExperimentOptions Options() const {
    eval::ExperimentOptions options = DefaultOptions();
    if (instructions_ > 0) {
      options.target_instructions = instructions_;
    }
    options.jobs = jobs_;
    options.checkpoint_dir = checkpoint_dir_;
    options.checkpoint_interval = checkpoint_interval_;
    return options;
  }

  uint64_t TargetInstructions() const { return Options().target_instructions; }
  int Jobs() const { return jobs_; }
  bool enabled() const { return !json_path_.empty(); }

  // The underlying metric collector, shared with the campaign engine's
  // workload assembly path so standalone and in-process runs emit the exact
  // same metric stream.
  eval::ReportBuilder& builder() { return builder_; }

  void Add(const std::string& name, double value, eval::MetricKind kind, double tol,
           double paper = NAN, const std::string& note = "") {
    builder_.Add(name, value, kind, tol, paper, note);
  }

  void AddFidelity(const std::string& name, double value, double tol, double paper = NAN,
                   const std::string& note = "") {
    builder_.AddFidelity(name, value, tol, paper, note);
  }

  void AddPerf(const std::string& name, double value, double tol = kCyclesTol) {
    builder_.AddPerf(name, value, tol);
  }

  void AddInfo(const std::string& name, double value) { builder_.AddInfo(name, value); }

  void AddHostPerf(const std::string& name, double value, double tol) {
    builder_.AddHostPerf(name, value, tol);
  }

  // Accumulates simulated (retired) instructions executed by this binary.
  // Finish() turns the total into a `<binary>/sim_instr_per_second`
  // host-perf metric — the suite's wall-clock throughput gauge, checked
  // against the baseline with a generous tolerance (hosts vary) but
  // warn-only so a slow machine never hard-fails the gate.
  void AddSimulatedInstructions(double instructions) {
    builder_.AddSimulatedInstructions(instructions);
  }

  void AddFigure(const std::string& prefix, const std::vector<eval::FigureSeries>& series,
                 const std::vector<double>& paper_geomeans) {
    builder_.AddFigure(prefix, series, paper_geomeans);
  }

  // Writes the report if --json= was given. Returns the binary's exit code
  // (nonzero when the report could not be written, so CI notices).
  int Finish() {
    if (json_path_.empty()) {
      return 0;
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    AddInfo(binary_ + "/wall_seconds", wall);
    if (builder_.sim_instructions() > 0 && wall > 0) {
      AddHostPerf(binary_ + "/sim_instr_per_second", builder_.sim_instructions() / wall,
                  kHostThroughputTol);
    }
    json::Value doc = json::Value::Object();
    doc.Set("schema", 1);
    doc.Set("binary", binary_);
    doc.Set("instructions", TargetInstructions());
    doc.Set("wall_seconds", wall);
    doc.Set("metrics", builder_.TakeMetrics());
    // Atomic write: a crash mid-report leaves no torn JSON for the runner's
    // salvage pass to misread.
    if (Status s = json::WriteFileAtomic(json_path_, doc); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", binary_.c_str(), s.ToString().c_str());
      return 1;
    }
    return 0;
  }

 private:
  std::string binary_;
  std::string json_path_;
  std::string checkpoint_dir_;
  uint64_t checkpoint_interval_ = 0;
  uint64_t instructions_ = 0;
  int jobs_ = 0;  // 0 = hardware_concurrency (see eval::ExperimentOptions)
  std::chrono::steady_clock::time_point start_;
  eval::ReportBuilder builder_;
};

}  // namespace memsentry::bench

#endif  // MEMSENTRY_BENCH_BENCH_UTIL_H_

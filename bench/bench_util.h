// Shared table-printing helpers for the per-figure benchmark binaries. Every
// binary prints the paper's reference values next to the reproduced ones so
// the comparison is one `diff`-shaped read.
#ifndef MEMSENTRY_BENCH_BENCH_UTIL_H_
#define MEMSENTRY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/eval/figures.h"
#include "src/workloads/spec_profiles.h"

namespace memsentry::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// Prints one figure as rows of benchmarks x configuration columns.
inline void PrintFigure(const std::vector<eval::FigureSeries>& series,
                        const std::vector<double>& paper_geomeans) {
  std::printf("%-16s", "benchmark");
  for (const auto& s : series) {
    std::printf("%10s", s.config.c_str());
  }
  std::printf("\n");
  const auto profiles = workloads::SpecCpu2006();
  for (size_t b = 0; b < profiles.size(); ++b) {
    std::printf("%-16s", profiles[b].name.c_str());
    for (const auto& s : series) {
      std::printf("%10.2f", s.normalized[b]);
    }
    std::printf("\n");
  }
  std::printf("%-16s", "geomean");
  for (const auto& s : series) {
    std::printf("%10.3f", s.geomean);
  }
  std::printf("\n%-16s", "paper geomean");
  for (size_t i = 0; i < series.size(); ++i) {
    if (i < paper_geomeans.size()) {
      std::printf("%10.3f", paper_geomeans[i]);
    } else {
      std::printf("%10s", "-");
    }
  }
  std::printf("\n(normalized runtime; 1.00 = uninstrumented baseline)\n");
}

inline eval::ExperimentOptions DefaultOptions() {
  eval::ExperimentOptions options;
  options.target_instructions = 400'000;
  return options;
}

}  // namespace memsentry::bench

#endif  // MEMSENTRY_BENCH_BENCH_UTIL_H_

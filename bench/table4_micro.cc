// Thin standalone entry point for the "table4_micro" suite workload. The
// workload body lives in src/suite (registered with the campaign engine);
// this binary runs it with printing and crash-context staging on, exactly
// like the historical monolithic binary.
#include "bench/suite_main.h"

int main(int argc, char** argv) {
  return memsentry::bench::SuiteMain("table4_micro", argc, argv);
}

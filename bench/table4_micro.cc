// Table 4 reproduction: microbenchmark latencies of the hardware protection
// features and related operations, measured by timing tight loops of many
// iterations in the simulator (the paper's methodology) and compared with
// the paper's values measured on an i7-6700K.
//
// Note on the sub-cycle rows: the paper measures *marginal latency* on an
// out-of-order core, where an instruction's issue slot is hidden unless it
// lengthens the dependence chain. Our cost model is additive (slot +
// dependency latency), so the measured values include the issue slot the
// paper's hardware hides; the dependency component matches Table 4.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/memsentry.h"
#include "src/ir/builder.h"
#include "src/mpx/mpx.h"
#include "src/sim/executor.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

bench::Reporter* g_reporter = nullptr;

using ir::Instr;
using ir::Opcode;
using machine::Gpr;
using workloads::BuildLoop;

constexpr uint64_t kIters = 10'000;

struct Env {
  sim::Machine machine;
  sim::Process process{&machine};
};

// Runs `body` as a loop and returns cycles per iteration.
double PerIteration(sim::Process& process, const std::vector<Instr>& body) {
  ir::Module module = BuildLoop(body, kIters);
  sim::Executor executor(&process, &module);
  auto result = executor.Run();
  if (!result.halted) {
    std::printf("  !! loop faulted: %s\n",
                result.fault ? result.fault->ToString().c_str() : "?");
    return -1;
  }
  return result.cycles / static_cast<double>(kIters);
}

double Delta(sim::Process& process, const std::vector<Instr>& with_op,
             const std::vector<Instr>& reference) {
  // Warm the TLB and caches first so cold walks don't pollute the delta.
  (void)PerIteration(process, with_op);
  (void)PerIteration(process, reference);
  return PerIteration(process, with_op) - PerIteration(process, reference);
}

// key: slash-path suffix for the JSON report ("table4/<key>"). The paper
// column stays a string for display ("<0.1"); the numeric reference for the
// gate comes from the recorded measured value in the committed baseline.
void Row(const char* key, const char* name, const char* paper, double measured,
         const char* note = "") {
  std::printf("%-46s %10s %12.2f  %s\n", name, paper, measured, note);
  if (g_reporter != nullptr) {
    g_reporter->AddFidelity(std::string("table4/") + key, measured,
                            bench::kMicroLatencyTol, NAN, std::string("paper: ") + paper);
  }
}

void RowModel(const char* key, const char* name, const char* paper, double model) {
  std::printf("%-46s %10s %12.2f  (machine description)\n", name, paper, model);
  if (g_reporter != nullptr) {
    g_reporter->AddFidelity(std::string("table4/") + key, model, 0.0, NAN,
                            std::string("machine description; paper: ") + paper);
  }
}

Instr Critical(Instr instr) {
  instr.flags |= ir::kFlagCritical | ir::kFlagInstrumentation;
  return instr;
}
Instr Plain(Instr instr) {
  instr.flags |= ir::kFlagInstrumentation;
  return instr;
}

}  // namespace

int RunTable4(bench::Reporter* reporter) {
  g_reporter = reporter;
  std::printf("\n================================================================\n");
  std::printf("Table 4 — microbenchmark latencies (cycles)\n");
  std::printf("================================================================\n");
  std::printf("%-46s %10s %12s\n", "instruction/operation", "paper", "measured");

  const machine::CostModel cost;  // defaults = the calibrated machine

  // --- memory hierarchy: machine description, from the paper's table ---
  RowModel("l1_access", "L1 cache access", "4", cost.lat_l1);
  RowModel("l2_access", "L2 cache access", "12", cost.lat_l2);
  RowModel("l3_access", "L3 cache access", "44", cost.lat_l3);
  RowModel("dram_access", "DRAM access", "251", cost.lat_dram);

  // --- SFI and MPX sequences ---
  {
    Env env;
    (void)env.process.SetupStack();
    (void)env.process.MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data());
    const std::vector<Instr> lea_load = {
        Instr{.op = Opcode::kLea, .dst = Gpr::kR9, .src = Gpr::kR8},
        Instr{.op = Opcode::kLoad, .dst = Gpr::kRbx, .src = Gpr::kR9},
    };
    const std::vector<Instr> lea_store = {
        Instr{.op = Opcode::kLea, .dst = Gpr::kR9, .src = Gpr::kR8},
        Instr{.op = Opcode::kStore, .dst = Gpr::kR9, .src = Gpr::kRbx},
    };
    auto with = [](std::vector<Instr> seq, Instr op, size_t at = 1) {
      seq.insert(seq.begin() + static_cast<long>(at), op);
      return seq;
    };
    Row("sfi_and_load", "SFI (and, result used by load)", "0.22",
        Delta(env.process,
              with(lea_load, Critical({.op = Opcode::kAndImm, .dst = Gpr::kR9, .imm = kSfiMask})),
              lea_load),
        "(0.22 dep + 0.25 slot)");
    Row("sfi_and_store", "SFI (and, result used by store)", "0",
        Delta(env.process,
              with(lea_store, Plain({.op = Opcode::kAndImm, .dst = Gpr::kR9, .imm = kSfiMask})),
              lea_store),
        "(slot only; store buffer hides dep)");
    env.process.regs().bnd[0] = mpx::MakeBounds(0, kPartitionSplit);
    Row("mpx_single_bndcu", "MPX (single bndcu)", "<0.1",
        Delta(env.process,
              with(lea_load, Plain({.op = Opcode::kBndcu, .src = Gpr::kR9, .imm = 0})),
              lea_load),
        "(no pointer modification -> no dep)");
    auto both = with(lea_load, Plain({.op = Opcode::kBndcu, .src = Gpr::kR9, .imm = 0}));
    both = with(both, Critical({.op = Opcode::kBndcl, .src = Gpr::kR9, .imm = 0}), 2);
    Row("mpx_both_bounds", "MPX (both bndcl and bndcu)", "0.50", Delta(env.process, both, lea_load),
        "(second check serializes: +0.42)");
  }

  // --- MPK ---
  {
    Env env;
    (void)env.process.SetupStack();
    (void)env.process.MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data());
    const std::vector<Instr> wrpkru = {Instr{.op = Opcode::kWrpkru, .imm = 0}};
    Row("mpk_wrpkru", "MPK (wrpkru, simulated)", "42", PerIteration(env.process, wrpkru),
        "(the paper's xmm-moves + mfence approximation)");
  }

  // --- virtualization ---
  {
    Env env;
    (void)env.process.EnableDune();
    (void)env.process.SetupStack();
    (void)env.process.MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data());
    (void)env.process.dune()->CreateEpt();
    const std::vector<Instr> vmfunc_pair = {
        Instr{.op = Opcode::kVmFunc, .imm = 1},
        Instr{.op = Opcode::kVmFunc, .imm = 0},
    };
    Row("vmfunc_ept_switch", "vmfunc (EPT switch)", "147", PerIteration(env.process, vmfunc_pair) / 2.0);
    const std::vector<Instr> vmcall = {Instr{.op = Opcode::kVmCall, .imm = 0}};
    Row("vmcall", "vmcall", "613", PerIteration(env.process, vmcall));
  }
  {
    Env env;
    (void)env.process.SetupStack();
    (void)env.process.MapRange(sim::kWorkingSetBase, 4, machine::PageFlags::Data());
    const std::vector<Instr> syscall = {Instr{.op = Opcode::kSyscall, .imm = 0}};
    Row("syscall", "syscall", "108", PerIteration(env.process, syscall));
  }

  // --- SGX ---
  {
    Env env;
    (void)env.process.SetupStack();
    core::MemSentryConfig config;
    config.technique = core::TechniqueKind::kSgx;
    core::MemSentry ms(&env.process, config);
    (void)ms.allocator().Alloc("enclave-data", 4096);
    (void)ms.PrepareRuntime();
    const std::vector<Instr> crossing = {
        Instr{.op = Opcode::kEnclaveEnter, .imm = 0},
        Instr{.op = Opcode::kEnclaveExit},
    };
    Row("sgx_ecall_roundtrip", "SGX enter + exit enclave (empty ECALL)", "7664", PerIteration(env.process, crossing));
  }

  // --- AES-NI ---
  {
    Env env;
    (void)env.process.SetupStack();
    core::MemSentryConfig config;
    config.technique = core::TechniqueKind::kCrypt;
    core::MemSentry ms(&env.process, config);
    auto region = ms.allocator().Alloc("chunk", 16);
    (void)ms.PrepareRuntime();
    const std::vector<Instr> encdec = {
        Instr{.op = Opcode::kMovImm, .dst = Gpr::kRax, .imm = region.value()->base},
        Instr{.op = Opcode::kAesCryptRegion, .src = Gpr::kRax, .target = 0},
        Instr{.op = Opcode::kMovImm, .dst = Gpr::kRax, .imm = region.value()->base},
        Instr{.op = Opcode::kAesCryptRegion, .src = Gpr::kRax, .target = 0},
    };
    const machine::CostModel& cm = env.machine.cost;
    Row("aes_encdec_block", "AES encryption and decryption (11 rounds)", "41",
        PerIteration(env.process, encdec) - 2 * cm.ymm_to_xmm_all_keys - 2 * cm.mov_imm_slot,
        "(one 128-bit chunk, keys already in xmm)");
    RowModel("aes_keygen10", "AES keygen (10 rounds)", "121", cm.aes_keygen10);
    RowModel("aes_imc9", "AES imc (9 rounds)", "71", cm.aes_imc9);
    RowModel("ymm_to_xmm_keys", "Loading ymm into xmm (11 times)", "10", cm.ymm_to_xmm_all_keys);
  }
  return 0;
}

}  // namespace memsentry

int main(int argc, char** argv) {
  memsentry::bench::Reporter reporter("table4_micro", argc, argv);
  if (const int rc = memsentry::RunTable4(&reporter); rc != 0) {
    return rc;
  }
  return reporter.Finish();
}

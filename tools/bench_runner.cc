// bench_runner — executes the whole benchmark suite, merges every binary's
// --json report into one BENCH_RESULTS.json, and gates the result against a
// committed baseline snapshot (bench/baselines/). Exits nonzero when a bench
// binary fails or a fidelity metric drifts beyond its tolerance, so CI can
// consume it directly.
//
//   bench_runner                      full suite (400k-instruction workloads)
//   bench_runner --quick              CI mode: 100k instructions, short substrate runs
//   bench_runner --only=fig3_address,table4_micro
//   bench_runner --skip=bench_substrate
//   bench_runner --out=BENCH_RESULTS.json
//   bench_runner --baseline=PATH      (default: bench/baselines/seed[-quick].json)
//   bench_runner --compare=RESULTS    gate an existing merged report, run nothing
//   bench_runner --write-baseline=P   also snapshot the merged report to P
//   bench_runner --no-gate            produce BENCH_RESULTS.json, skip comparison
//   bench_runner --verbose            stream per-binary stdout instead of logging
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/eval/regression_gate.h"

#ifndef MEMSENTRY_SOURCE_DIR
#define MEMSENTRY_SOURCE_DIR "."
#endif

namespace memsentry {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kFullInstructions = 400'000;
constexpr uint64_t kQuickInstructions = 100'000;

struct SuiteEntry {
  const char* name;
  // Extra argv appended only in --quick mode (e.g. shorter substrate runs).
  const char* quick_extra = "";
};

// Every benchmark binary in bench/. bench_substrate measures host time via
// google-benchmark, so quick mode shrinks its minimum measuring time instead
// of its (unused) instruction budget.
const SuiteEntry kSuite[] = {
    {"table1_defenses"},
    {"table2_applicability"},
    {"table3_limits"},
    {"table4_micro"},
    {"fig3_address"},
    {"fig4_callret"},
    {"fig5_indirect"},
    {"fig6_syscall"},
    {"mprotect_baseline"},
    {"crypt_size_sweep"},
    {"safestack_casestudy"},
    {"attack_matrix"},
    {"ablations"},
    {"microarch_stats"},
    {"bench_substrate", "--benchmark_min_time=0.01s"},
};

struct Options {
  bool quick = false;
  bool verbose = false;
  bool gate = true;
  uint64_t instructions = 0;  // 0 = mode default
  std::string bench_dir;
  std::string out = "BENCH_RESULTS.json";
  std::string baseline;
  std::string baselines_dir;
  std::string compare_existing;
  std::string write_baseline;
  std::vector<std::string> only;
  std::vector<std::string> skip;
};

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item = csv.substr(start, comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

bool Contains(const std::vector<std::string>& list, const std::string& name) {
  for (const auto& item : list) {
    if (item == name) {
      return true;
    }
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_runner [--quick] [--only=a,b] [--skip=a,b] [--out=PATH]\n"
               "                    [--bench-dir=DIR] [--baseline=PATH] [--no-gate]\n"
               "                    [--compare=RESULTS] [--write-baseline=PATH]\n"
               "                    [--instructions=N] [--verbose]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--no-gate") {
      opts.gate = false;
    } else if (const char* v = value("--only")) {
      opts.only = SplitCsv(v);
    } else if (const char* v = value("--skip")) {
      opts.skip = SplitCsv(v);
    } else if (const char* v = value("--out")) {
      opts.out = v;
    } else if (const char* v = value("--bench-dir")) {
      opts.bench_dir = v;
    } else if (const char* v = value("--baseline")) {
      opts.baseline = v;
    } else if (const char* v = value("--baselines-dir")) {
      opts.baselines_dir = v;
    } else if (const char* v = value("--compare")) {
      opts.compare_existing = v;
    } else if (const char* v = value("--write-baseline")) {
      opts.write_baseline = v;
    } else if (const char* v = value("--instructions")) {
      opts.instructions = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "bench_runner: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// The bench binaries live next to this binary's parent: build/tools/../bench.
std::string DefaultBenchDir(const char* argv0) {
  std::error_code ec;
  fs::path self = fs::canonical(fs::path(argv0), ec);
  if (ec) {
    self = fs::path(argv0);
  }
  return (self.parent_path().parent_path() / "bench").string();
}

int Severity3(eval::Severity s) {
  return s == eval::Severity::kFailure ? 2 : s == eval::Severity::kWarning ? 1 : 0;
}

void PrintGateReport(const eval::GateReport& report, const std::string& baseline_path,
                     bool perf_gated) {
  std::printf("\n---- regression gate vs %s ----\n", baseline_path.c_str());
  std::printf("perf metrics: %s\n",
              perf_gated ? "gated (>=2 baseline snapshots)" : "warn-only (single baseline)");
  for (int severity = 2; severity >= 0; --severity) {
    for (const auto& issue : report.issues) {
      if (Severity3(issue.severity) != severity) {
        continue;
      }
      const char* tag = severity == 2 ? "FAIL" : severity == 1 ? "warn" : "note";
      std::printf("  [%s] %s: %s\n", tag, issue.metric.c_str(), issue.message.c_str());
    }
  }
  std::printf("gate: %s (%s)\n", report.ok() ? "PASS" : "FAIL", report.Summary().c_str());
}

}  // namespace

int Run(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) {
    return Usage();
  }
  const uint64_t instructions =
      opts.instructions != 0 ? opts.instructions
                             : (opts.quick ? kQuickInstructions : kFullInstructions);
  if (opts.bench_dir.empty()) {
    opts.bench_dir = DefaultBenchDir(argv[0]);
  }
  if (opts.baselines_dir.empty()) {
    opts.baselines_dir = std::string(MEMSENTRY_SOURCE_DIR) + "/bench/baselines";
  }
  if (opts.baseline.empty()) {
    opts.baseline =
        opts.baselines_dir + (opts.quick ? "/seed-quick.json" : "/seed.json");
  }

  json::Value merged = json::Value::Object();
  int exit_code = 0;

  if (!opts.compare_existing.empty()) {
    auto loaded = json::ParseFile(opts.compare_existing);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    merged = std::move(loaded).value();
  } else {
    const fs::path report_dir = fs::path(opts.out).parent_path() / "bench_reports";
    std::error_code ec;
    fs::create_directories(report_dir, ec);
    if (ec) {
      std::fprintf(stderr, "bench_runner: cannot create %s: %s\n", report_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }

    // Reject --only/--skip names that match nothing: a typo would otherwise
    // run an empty suite and fail the gate with hundreds of "missing metric"
    // errors instead of naming the bad selector.
    for (const std::vector<std::string>* selector : {&opts.only, &opts.skip}) {
      for (const std::string& name : *selector) {
        bool known = false;
        for (const SuiteEntry& entry : kSuite) {
          known = known || name == entry.name;
        }
        if (!known) {
          std::fprintf(stderr, "bench_runner: unknown benchmark '%s' in --only/--skip\n",
                       name.c_str());
          return 2;
        }
      }
    }

    merged.Set("schema", 1);
    merged.Set("suite", "memsentry-bench");
    merged.Set("mode", opts.quick ? "quick" : "full");
    merged.Set("instructions", instructions);
    json::Value binaries = json::Value::Object();
    json::Value metrics = json::Value::Object();

    for (const SuiteEntry& entry : kSuite) {
      const std::string name = entry.name;
      if (!opts.only.empty() && !Contains(opts.only, name)) {
        continue;
      }
      if (Contains(opts.skip, name)) {
        continue;
      }
      const fs::path binary = fs::path(opts.bench_dir) / name;
      if (!fs::exists(binary)) {
        std::fprintf(stderr, "bench_runner: missing binary %s (build the bench targets)\n",
                     binary.c_str());
        exit_code = 1;
        continue;
      }
      const fs::path report_path = report_dir / (name + ".json");
      const fs::path log_path = report_dir / (name + ".log");
      std::string command = "\"" + binary.string() + "\" --json=\"" + report_path.string() +
                            "\" --instructions=" + std::to_string(instructions);
      if (opts.quick && entry.quick_extra[0] != '\0') {
        command += " ";
        command += entry.quick_extra;
      }
      if (!opts.verbose) {
        command += " > \"" + log_path.string() + "\" 2>&1";
      }
      std::printf("[bench_runner] %s ...\n", name.c_str());
      std::fflush(stdout);
      const int rc = std::system(command.c_str());
      json::Value info = json::Value::Object();
      info.Set("exit", rc);
      if (rc != 0) {
        std::fprintf(stderr, "bench_runner: %s exited with %d (log: %s)\n", name.c_str(), rc,
                     log_path.c_str());
        exit_code = 1;
        binaries.Set(name, std::move(info));
        continue;
      }
      auto report = json::ParseFile(report_path.string());
      if (!report.ok()) {
        std::fprintf(stderr, "bench_runner: %s\n", report.status().ToString().c_str());
        exit_code = 1;
        binaries.Set(name, std::move(info));
        continue;
      }
      info.Set("wall_seconds", report->NumberOr("wall_seconds", 0.0));
      binaries.Set(name, std::move(info));
      if (const json::Value* m = report->Find("metrics"); m != nullptr && m->is_object()) {
        for (const auto& [metric_name, metric] : m->members()) {
          if (metrics.Find(metric_name) != nullptr) {
            std::fprintf(stderr, "bench_runner: duplicate metric %s from %s\n",
                         metric_name.c_str(), name.c_str());
            exit_code = 1;
            continue;
          }
          metrics.Set(metric_name, metric);
        }
      }
    }
    merged.Set("binaries", std::move(binaries));
    merged.Set("metrics", std::move(metrics));

    if (Status s = json::WriteFile(opts.out, merged); !s.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[bench_runner] wrote %s (%zu metrics)\n", opts.out.c_str(),
                merged.Find("metrics")->size());
  }

  if (!opts.write_baseline.empty()) {
    if (Status s = json::WriteFile(opts.write_baseline, merged); !s.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[bench_runner] snapshot written to %s\n", opts.write_baseline.c_str());
  }

  if (!opts.gate) {
    return exit_code;
  }

  auto baseline = json::ParseFile(opts.baseline);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_runner: no baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }

  // Perf metrics warn while only the seed snapshot exists; once a second
  // snapshot for this mode lands in bench/baselines they gate like fidelity.
  int snapshots = 0;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(opts.baselines_dir, ec)) {
    const std::string file = dirent.path().filename().string();
    if (file.size() < 5 || file.substr(file.size() - 5) != ".json") {
      continue;
    }
    const bool is_quick = file.find("-quick") != std::string::npos;
    if (is_quick == opts.quick) {
      ++snapshots;
    }
  }
  eval::GateOptions gate_options;
  gate_options.gate_perf = snapshots >= 2;

  const eval::GateReport report = eval::CompareAgainstBaseline(merged, *baseline, gate_options);
  PrintGateReport(report, opts.baseline, gate_options.gate_perf);
  return report.ok() ? exit_code : 1;
}

}  // namespace memsentry

int main(int argc, char** argv) { return memsentry::Run(argc, argv); }

// bench_runner — executes the whole benchmark suite, merges every binary's
// --json report into one BENCH_RESULTS.json, and gates the result against a
// committed baseline snapshot (bench/baselines/). Exits nonzero when a bench
// binary fails or a fidelity metric drifts beyond its tolerance, so CI can
// consume it directly.
//
//   bench_runner                      full suite (400k-instruction workloads)
//   bench_runner --quick              CI mode: 100k instructions, short substrate runs
//   bench_runner --only=fig3_address,table4_micro
//   bench_runner --skip=bench_substrate
//   bench_runner --out=BENCH_RESULTS.json
//   bench_runner --baseline=PATH      (default: bench/baselines/seed[-quick].json)
//   bench_runner --compare=RESULTS    gate an existing merged report, run nothing
//   bench_runner --write-baseline=P   also snapshot the merged report to P
//   bench_runner --no-gate            produce BENCH_RESULTS.json, skip comparison
//   bench_runner --verbose            stream per-binary stdout instead of logging
//                                     (forces --jobs=1 to keep output readable)
//   bench_runner --jobs=N             total parallelism budget: up to N bench
//                                     binaries run concurrently, and a lone
//                                     binary fans its sweeps out over N workers.
//                                     Default: hardware_concurrency. Results
//                                     are bit-identical for every N.
//   bench_runner --timeout=SECONDS    per-binary wall-clock budget (default
//                                     600; 0 disables). A binary over budget
//                                     gets SIGTERM, then SIGKILL after a
//                                     grace period, and is classified
//                                     "timed out" — distinct from a crash.
//                                     Binaries killed by any other signal are
//                                     retried once after a short backoff; a
//                                     parseable report left behind by a dead
//                                     binary is salvaged into the merged
//                                     document so the gate sees every metric
//                                     the run actually produced.
//   bench_runner --check-determinism=OTHER.json
//                                     require every fidelity/perf metric to be
//                                     byte-identical to OTHER (info metrics
//                                     such as wall-clock are exempt)
//   bench_runner --fastpath=MODE      run every binary with the simulator
//                                     fast paths forced on|off|check (exported
//                                     as MEMSENTRY_FASTPATH to the children).
//                                     Modeled results are bit-identical across
//                                     modes; "check" additionally validates
//                                     the fast paths in lockstep and aborts on
//                                     divergence. Default: the environment's
//                                     setting (effectively "on").
//   bench_runner --journal=PATH       suite journal location (default:
//                                     BENCH_JOURNAL.jsonl next to --out). The
//                                     runner write-ahead journals every binary
//                                     start/completion; each append rewrites
//                                     the journal atomically, so a kill -9 at
//                                     any point leaves a complete journal.
//   bench_runner --resume             resume a killed run from its journal:
//                                     binaries journaled as cleanly done (with
//                                     a parseable report on disk) are not
//                                     re-executed; in-flight or failed ones
//                                     re-run. The merged report and gate
//                                     verdict are identical to an
//                                     uninterrupted run's (the suite is
//                                     deterministic; host wall-clocks are info
//                                     metrics and never gated).
//   bench_runner --checkpoint-interval=N
//                                     forward per-cell checkpointing to the
//                                     bench binaries: every experiment cell
//                                     snapshots its simulation state each N
//                                     instructions (under
//                                     bench_reports/checkpoints/<binary>), so
//                                     --resume also resumes mid-cell.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "src/base/fastpath.h"
#include "src/base/json.h"
#include "src/base/thread_pool.h"
#include "src/eval/regression_gate.h"

#ifndef MEMSENTRY_SOURCE_DIR
#define MEMSENTRY_SOURCE_DIR "."
#endif

namespace memsentry {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kFullInstructions = 400'000;
constexpr uint64_t kQuickInstructions = 100'000;

struct SuiteEntry {
  const char* name;
  // Extra argv appended only in --quick mode (e.g. shorter substrate runs).
  const char* quick_extra = "";
};

// Every benchmark binary in bench/. bench_substrate measures host time via
// google-benchmark, so quick mode shrinks its minimum measuring time instead
// of its (unused) instruction budget.
const SuiteEntry kSuite[] = {
    {"table1_defenses"},
    {"table2_applicability"},
    {"table3_limits"},
    {"table4_micro"},
    {"fig3_address"},
    {"fig4_callret"},
    {"fig5_indirect"},
    {"fig6_syscall"},
    {"mprotect_baseline"},
    {"crypt_size_sweep"},
    {"safestack_casestudy"},
    {"attack_matrix"},
    {"attack_campaigns", "--campaigns=160"},
    {"fault_matrix"},
    {"ablations"},
    {"server_workload", "--quick"},
    {"microarch_stats"},
    {"bench_substrate", "--benchmark_min_time=0.01s"},
};

struct Options {
  bool quick = false;
  bool verbose = false;
  bool gate = true;
  bool resume = false;
  uint64_t instructions = 0;         // 0 = mode default
  uint64_t checkpoint_interval = 0;  // 0 = no per-cell checkpointing
  double timeout_seconds = 600;      // per-binary wall-clock budget; 0 = none
  int jobs = 0;                      // 0 = hardware_concurrency; 1 = fully serial
  std::string bench_dir;
  std::string out = "BENCH_RESULTS.json";
  std::string baseline;
  std::string baselines_dir;
  std::string compare_existing;
  std::string write_baseline;
  std::string check_determinism;
  std::string fastpath;  // empty = inherit the environment
  std::string journal;   // empty = BENCH_JOURNAL.jsonl next to --out
  std::vector<std::string> only;
  std::vector<std::string> skip;
};

// Child-process outcome, decoded so logs and the merged report say exactly
// which way a binary died: clean exit code, signal, wall-clock timeout (our
// SIGTERM/SIGKILL — distinct from a crash), or spawn failure.
struct CommandStatus {
  bool spawn_failed = false;
  bool signaled = false;
  bool timed_out = false;
  int exit_code = 0;  // valid when !spawn_failed && !signaled
  int signal = 0;     // valid when signaled

  bool ok() const { return !spawn_failed && !signaled && !timed_out && exit_code == 0; }

  std::string Describe() const {
    char buf[64];
    if (spawn_failed) {
      return "failed to spawn";
    }
    if (timed_out) {
      return "timed out (killed)";
    }
    if (signaled) {
      std::snprintf(buf, sizeof(buf), "killed by signal %d", signal);
      return buf;
    }
    std::snprintf(buf, sizeof(buf), "exited with %d", exit_code);
    return buf;
  }
};

#ifndef _WIN32

// fork/exec with stdout+stderr redirected to `log_path` (empty = inherit,
// the --verbose path) and a wall-clock budget: a child over budget gets
// SIGTERM, then SIGKILL once the grace period lapses, so even a child that
// ignores SIGTERM cannot hang the suite. `timeout_seconds` <= 0 disables
// the budget.
CommandStatus RunProcess(const std::vector<std::string>& args, const std::string& log_path,
                         double timeout_seconds) {
  CommandStatus status;
  const pid_t pid = fork();
  if (pid < 0) {
    status.spawn_failed = true;
    return status;
  }
  if (pid == 0) {
    if (!log_path.empty()) {
      const int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        close(fd);
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }

  constexpr auto kPollInterval = std::chrono::milliseconds(20);
  constexpr auto kKillGrace = std::chrono::seconds(5);
  const auto start = std::chrono::steady_clock::now();
  const bool bounded = timeout_seconds > 0;
  const auto term_deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(bounded ? timeout_seconds : 0));
  bool sent_term = false;
  bool sent_kill = false;
  auto kill_deadline = term_deadline;

  for (;;) {
    int wstatus = 0;
    const pid_t reaped = waitpid(pid, &wstatus, WNOHANG);
    if (reaped == pid) {
      if (WIFSIGNALED(wstatus)) {
        status.signaled = true;
        status.signal = WTERMSIG(wstatus);
      } else if (WIFEXITED(wstatus)) {
        status.exit_code = WEXITSTATUS(wstatus);
      } else {
        status.spawn_failed = true;
      }
      // Death caused by our own escalation reports as a timeout, not as an
      // organic signal death (the two are gated and retried differently).
      status.timed_out = sent_term;
      return status;
    }
    if (reaped < 0) {
      status.spawn_failed = true;
      return status;
    }
    const auto now = std::chrono::steady_clock::now();
    if (bounded && !sent_term && now >= term_deadline) {
      kill(pid, SIGTERM);
      sent_term = true;
      kill_deadline = now + kKillGrace;
    } else if (sent_term && !sent_kill && now >= kill_deadline) {
      kill(pid, SIGKILL);
      sent_kill = true;
    }
    std::this_thread::sleep_for(kPollInterval);
  }
}

#else  // _WIN32: no fork; run unbounded through the shell.

CommandStatus RunProcess(const std::vector<std::string>& args, const std::string& log_path,
                         double) {
  std::string command;
  for (const std::string& arg : args) {
    command += "\"" + arg + "\" ";
  }
  if (!log_path.empty()) {
    command += "> \"" + log_path + "\" 2>&1";
  }
  CommandStatus status;
  const int raw = std::system(command.c_str());
  if (raw == -1) {
    status.spawn_failed = true;
  } else {
    status.exit_code = raw;
  }
  return status;
}

#endif

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item = csv.substr(start, comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

bool Contains(const std::vector<std::string>& list, const std::string& name) {
  for (const auto& item : list) {
    if (item == name) {
      return true;
    }
  }
  return false;
}

// Write-ahead suite journal: one JSON object per line — a header describing
// the run configuration, then {"event":"start"|"done",...} per binary. Every
// append rewrites the whole file through the temp-file+rename path, so the
// on-disk journal is always a complete prefix of the run: a kill -9 at any
// instant loses at most the event being appended, never corrupts one.
class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  // Starts a fresh journal (overwrites any previous run's).
  void Start(const json::Value& header) {
    std::lock_guard<std::mutex> lock(mutex_);
    content_ = header.Dump(0) + "\n";
    Flush();
  }

  // Continues an existing journal (the --resume path).
  void Continue(std::string existing) {
    std::lock_guard<std::mutex> lock(mutex_);
    content_ = std::move(existing);
  }

  void Append(const json::Value& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    content_ += event.Dump(0) + "\n";
    Flush();
  }

 private:
  void Flush() {
    if (Status s = json::WriteTextFileAtomic(path_, content_); !s.ok()) {
      std::fprintf(stderr, "bench_runner: journal write failed: %s\n", s.ToString().c_str());
    }
  }

  std::string path_;
  std::string content_;
  std::mutex mutex_;
};

// What a previous run's journal says about the suite: the run-configuration
// header and, per binary, the last completion event.
struct JournalState {
  json::Value header;
  std::map<std::string, json::Value> done;  // binary name -> "done" event
  std::string raw;                          // full text, continued on resume
};

StatusOr<JournalState> LoadJournal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("no journal at " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  JournalState state;
  state.raw = text;
  size_t start = 0;
  bool first = true;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) {
      continue;
    }
    auto parsed = json::Parse(line);
    if (!parsed.ok()) {
      // A torn trailing line should be impossible (appends are atomic); be
      // lenient anyway and treat the rest as absent.
      break;
    }
    if (first) {
      if (parsed->Find("journal") == nullptr) {
        return InvalidArgument(path + " does not start with a journal header");
      }
      state.header = std::move(parsed).value();
      first = false;
      continue;
    }
    if (parsed->StringOr("event", "") == "done") {
      state.done[parsed->StringOr("binary", "")] = std::move(parsed).value();
    }
  }
  if (first) {
    return InvalidArgument(path + " is empty");
  }
  return state;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_runner [--quick] [--only=a,b] [--skip=a,b] [--out=PATH]\n"
               "                    [--bench-dir=DIR] [--baseline=PATH] [--no-gate]\n"
               "                    [--compare=RESULTS] [--write-baseline=PATH]\n"
               "                    [--instructions=N] [--jobs=N] [--timeout=SECONDS]\n"
               "                    [--verbose] [--check-determinism=OTHER.json]\n"
               "                    [--fastpath=on|off|check] [--journal=PATH]\n"
               "                    [--resume] [--checkpoint-interval=N]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--no-gate") {
      opts.gate = false;
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (const char* v = value("--journal")) {
      opts.journal = v;
    } else if (const char* v = value("--checkpoint-interval")) {
      opts.checkpoint_interval = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--only")) {
      opts.only = SplitCsv(v);
    } else if (const char* v = value("--skip")) {
      opts.skip = SplitCsv(v);
    } else if (const char* v = value("--out")) {
      opts.out = v;
    } else if (const char* v = value("--bench-dir")) {
      opts.bench_dir = v;
    } else if (const char* v = value("--baseline")) {
      opts.baseline = v;
    } else if (const char* v = value("--baselines-dir")) {
      opts.baselines_dir = v;
    } else if (const char* v = value("--compare")) {
      opts.compare_existing = v;
    } else if (const char* v = value("--write-baseline")) {
      opts.write_baseline = v;
    } else if (const char* v = value("--instructions")) {
      opts.instructions = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--jobs")) {
      opts.jobs = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--timeout")) {
      opts.timeout_seconds = std::strtod(v, nullptr);
    } else if (const char* v = value("--check-determinism")) {
      opts.check_determinism = v;
    } else if (const char* v = value("--fastpath")) {
      opts.fastpath = v;
    } else {
      std::fprintf(stderr, "bench_runner: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// The bench binaries live next to this binary's parent: build/tools/../bench.
std::string DefaultBenchDir(const char* argv0) {
  std::error_code ec;
  fs::path self = fs::canonical(fs::path(argv0), ec);
  if (ec) {
    self = fs::path(argv0);
  }
  return (self.parent_path().parent_path() / "bench").string();
}

json::Value InfoMetric(double value) {
  json::Value entry = json::Value::Object();
  entry.Set("value", value);
  entry.Set("kind", "info");
  entry.Set("tol", 0.0);
  return entry;
}

const char* CompilerString() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

// Compares every fidelity/perf metric of `results` and `other` for exact
// (bitwise double) equality in both directions. Info metrics — wall clocks,
// host-side benchmark times, jobs — and host-flagged perf metrics
// (sim_instr_per_second) legitimately differ between runs and are exempt.
// Returns the number of mismatches, printing each.
int CountDeterminismMismatches(const json::Value& results, const json::Value& other) {
  const json::Value* a = results.Find("metrics");
  const json::Value* b = other.Find("metrics");
  if (a == nullptr || !a->is_object() || b == nullptr || !b->is_object()) {
    std::fprintf(stderr, "bench_runner: determinism check needs \"metrics\" in both files\n");
    return 1;
  }
  int mismatches = 0;
  for (const auto& [name, entry] : a->members()) {
    if (eval::ParseMetricKind(entry.StringOr("kind", "info")) == eval::MetricKind::kInfo ||
        entry.BoolOr("host", false)) {
      continue;
    }
    const json::Value* peer = b->Find(name);
    if (peer == nullptr) {
      std::fprintf(stderr, "  [determinism] %s: missing from other run\n", name.c_str());
      ++mismatches;
      continue;
    }
    const double va = entry.NumberOr("value", 0.0);
    const double vb = peer->NumberOr("value", 0.0);
    if (va != vb) {
      std::fprintf(stderr, "  [determinism] %s: %.17g != %.17g\n", name.c_str(), va, vb);
      ++mismatches;
    }
  }
  for (const auto& [name, entry] : b->members()) {
    if (eval::ParseMetricKind(entry.StringOr("kind", "info")) == eval::MetricKind::kInfo ||
        entry.BoolOr("host", false)) {
      continue;
    }
    if (a->Find(name) == nullptr) {
      std::fprintf(stderr, "  [determinism] %s: missing from this run\n", name.c_str());
      ++mismatches;
    }
  }
  return mismatches;
}

int Severity3(eval::Severity s) {
  return s == eval::Severity::kFailure ? 2 : s == eval::Severity::kWarning ? 1 : 0;
}

void PrintGateReport(const eval::GateReport& report, const std::string& baseline_path,
                     bool perf_gated) {
  std::printf("\n---- regression gate vs %s ----\n", baseline_path.c_str());
  std::printf("perf metrics: %s\n",
              perf_gated ? "gated (>=2 baseline snapshots)" : "warn-only (single baseline)");
  for (int severity = 2; severity >= 0; --severity) {
    for (const auto& issue : report.issues) {
      if (Severity3(issue.severity) != severity) {
        continue;
      }
      const char* tag = severity == 2 ? "FAIL" : severity == 1 ? "warn" : "note";
      std::printf("  [%s] %s: %s\n", tag, issue.metric.c_str(), issue.message.c_str());
    }
  }
  std::printf("gate: %s (%s)\n", report.ok() ? "PASS" : "FAIL", report.Summary().c_str());
}

}  // namespace

int Run(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) {
    return Usage();
  }
  if (!opts.fastpath.empty()) {
    base::FastPathMode mode;
    if (!base::ParseFastPathMode(opts.fastpath.c_str(), &mode)) {
      std::fprintf(stderr, "bench_runner: bad --fastpath value '%s' (want on|off|check)\n",
                   opts.fastpath.c_str());
      return 2;
    }
#ifndef _WIN32
    // Exported (not just set in-process): the bench binaries are child
    // processes and pick the mode up from their own environment.
    ::setenv("MEMSENTRY_FASTPATH", base::FastPathModeName(mode), /*overwrite=*/1);
#endif
    base::SetFastPathMode(mode);
  }
  const uint64_t instructions =
      opts.instructions != 0 ? opts.instructions
                             : (opts.quick ? kQuickInstructions : kFullInstructions);
  if (opts.bench_dir.empty()) {
    opts.bench_dir = DefaultBenchDir(argv[0]);
  }
  if (opts.baselines_dir.empty()) {
    opts.baselines_dir = std::string(MEMSENTRY_SOURCE_DIR) + "/bench/baselines";
  }
  if (opts.baseline.empty()) {
    opts.baseline =
        opts.baselines_dir + (opts.quick ? "/seed-quick.json" : "/seed.json");
  }

  json::Value merged = json::Value::Object();
  int exit_code = 0;

  if (!opts.compare_existing.empty()) {
    auto loaded = json::ParseFile(opts.compare_existing);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    merged = std::move(loaded).value();
  } else {
    const fs::path report_dir = fs::path(opts.out).parent_path() / "bench_reports";
    std::error_code ec;
    fs::create_directories(report_dir, ec);
    if (ec) {
      std::fprintf(stderr, "bench_runner: cannot create %s: %s\n", report_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }

    // Reject --only/--skip names that match nothing: a typo would otherwise
    // run an empty suite and fail the gate with hundreds of "missing metric"
    // errors instead of naming the bad selector.
    for (const std::vector<std::string>* selector : {&opts.only, &opts.skip}) {
      for (const std::string& name : *selector) {
        bool known = false;
        for (const SuiteEntry& entry : kSuite) {
          known = known || name == entry.name;
        }
        if (!known) {
          std::fprintf(stderr, "bench_runner: unknown benchmark '%s' in --only/--skip\n",
                       name.c_str());
          return 2;
        }
      }
    }

    merged.Set("schema", 1);
    merged.Set("suite", "memsentry-bench");
    merged.Set("mode", opts.quick ? "quick" : "full");
    merged.Set("instructions", instructions);
    merged.Set("fastpath", opts.fastpath.empty() ? "default" : opts.fastpath);
    json::Value binaries = json::Value::Object();
    json::Value metrics = json::Value::Object();

    // The suite journal. A fresh run writes a new header; --resume validates
    // the existing header against this invocation's configuration (merging
    // two differently-configured runs would silently gate garbage) and
    // collects the binaries already journaled as done.
    const std::string journal_path =
        opts.journal.empty() ? (fs::path(opts.out).parent_path() / "BENCH_JOURNAL.jsonl").string()
                             : opts.journal;
    Journal journal(journal_path);
    json::Value journal_header = json::Value::Object();
    journal_header.Set("journal", 1);
    journal_header.Set("mode", opts.quick ? "quick" : "full");
    journal_header.Set("instructions", instructions);
    journal_header.Set("fastpath", opts.fastpath.empty() ? "default" : opts.fastpath);
    journal_header.Set("out", opts.out);
    std::map<std::string, json::Value> journaled_done;
    bool resuming = false;
    if (opts.resume) {
      auto previous = LoadJournal(journal_path);
      if (!previous.ok()) {
        std::fprintf(stderr, "bench_runner: --resume: %s; starting fresh\n",
                     previous.status().ToString().c_str());
      } else if (previous->header.Dump(0) != journal_header.Dump(0)) {
        std::fprintf(stderr,
                     "bench_runner: --resume: journal %s was written by a differently "
                     "configured run\n  journal: %s\n  this run: %s\n",
                     journal_path.c_str(), previous->header.Dump(0).c_str(),
                     journal_header.Dump(0).c_str());
        return 2;
      } else {
        journaled_done = std::move(previous->done);
        journal.Continue(std::move(previous->raw));
        resuming = true;
      }
    }
    if (!resuming) {
      journal.Start(journal_header);
    }
#ifndef _WIN32
    // The crash handler in each bench binary snapshots the journal tail into
    // its bundles.
    std::error_code abs_ec;
    const fs::path abs_journal = fs::absolute(journal_path, abs_ec);
    ::setenv("MEMSENTRY_JOURNAL", (abs_ec ? fs::path(journal_path) : abs_journal).c_str(),
             /*overwrite=*/1);
#endif

    // Select the binaries to run; missing ones are reported up front so a
    // half-built tree fails fast instead of mid-suite.
    std::vector<const SuiteEntry*> to_run;
    for (const SuiteEntry& entry : kSuite) {
      const std::string name = entry.name;
      if (!opts.only.empty() && !Contains(opts.only, name)) {
        continue;
      }
      if (Contains(opts.skip, name)) {
        continue;
      }
      if (!fs::exists(fs::path(opts.bench_dir) / name)) {
        std::fprintf(stderr, "bench_runner: missing binary %s (build the bench targets)\n",
                     (fs::path(opts.bench_dir) / name).c_str());
        exit_code = 1;
        continue;
      }
      to_run.push_back(&entry);
    }

    // The parallelism budget splits between scheduling binaries concurrently
    // (bounded job slots) and each binary's own sweep fan-out: with more
    // binaries than budget every binary runs its sweeps serially; a lone
    // binary (--only=fig3_address) gets the whole budget for its cells.
    // --verbose streams child stdout, so it forces a fully serial run.
    const int total_jobs = opts.verbose ? 1 : ResolveJobs(opts.jobs);
    const int slots = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(total_jobs), std::max<size_t>(to_run.size(), 1)));
    const int inner_jobs = std::max(1, total_jobs / slots);

    struct BinaryRun {
      CommandStatus status;
      int retries = 0;            // signal deaths retried (at most once)
      double runner_seconds = 0;  // host wall-clock around the child process
      bool from_journal = false;  // completion taken from a resumed journal
      // Every attempt's report path; retries get stamped paths
      // (<name>.retry1.json) so no attempt ever overwrites another's output.
      std::vector<std::string> report_paths;
    };

    // Resumable completions: journaled as done with a clean exit and a
    // parseable final report still on disk. Anything else (in-flight at the
    // kill, crashed, report missing) re-runs.
    std::map<std::string, BinaryRun> resumable;
    for (const auto& [name, event] : journaled_done) {
      BinaryRun run;
      run.from_journal = true;
      const int exit = static_cast<int>(event.NumberOr("exit", -1));
      run.status.spawn_failed = exit < 0;
      run.status.exit_code = exit < 0 ? 0 : exit;
      if (const json::Value* sig = event.Find("signal"); sig != nullptr) {
        run.status.signaled = true;
        run.status.signal = static_cast<int>(sig->number_value());
      }
      run.status.timed_out = event.BoolOr("timed_out", false);
      run.retries = static_cast<int>(event.NumberOr("retries", 0));
      run.runner_seconds = event.NumberOr("runner_seconds", 0.0);
      if (const json::Value* reports = event.Find("reports");
          reports != nullptr && reports->is_array()) {
        for (const json::Value& p : reports->items()) {
          run.report_paths.push_back(p.string_value());
        }
      }
      if (run.status.ok() && !run.report_paths.empty() &&
          json::ParseFile(run.report_paths.back()).ok()) {
        resumable.emplace(name, std::move(run));
      }
    }

    std::mutex print_mutex;
    const auto suite_start = std::chrono::steady_clock::now();
    const std::vector<BinaryRun> runs =
        ParallelMap(slots, to_run.size(), [&](size_t i) -> BinaryRun {
          const SuiteEntry& entry = *to_run[i];
          const std::string name = entry.name;
          if (const auto it = resumable.find(name); it != resumable.end()) {
            std::lock_guard<std::mutex> lock(print_mutex);
            std::printf("[bench_runner] %s (done; resumed from journal)\n", name.c_str());
            std::fflush(stdout);
            return it->second;
          }
          const fs::path binary = fs::path(opts.bench_dir) / name;
          const fs::path log_path = report_dir / (name + ".log");
          {
            std::lock_guard<std::mutex> lock(print_mutex);
            std::printf("[bench_runner] %s ...\n", name.c_str());
            std::fflush(stdout);
          }
          json::Value started = json::Value::Object();
          started.Set("event", "start");
          started.Set("binary", name);
          journal.Append(started);

          BinaryRun run;
          const auto start = std::chrono::steady_clock::now();
          for (;;) {
            const fs::path report_path =
                report_dir / (run.retries == 0
                                  ? name + ".json"
                                  : name + ".retry" + std::to_string(run.retries) + ".json");
            run.report_paths.push_back(report_path.string());
            std::vector<std::string> args = {
                binary.string(), "--json=" + report_path.string(),
                "--instructions=" + std::to_string(instructions),
                "--jobs=" + std::to_string(inner_jobs)};
            if (opts.checkpoint_interval > 0) {
              args.push_back("--checkpoint-dir=" +
                             (report_dir / "checkpoints" / name).string());
              args.push_back("--checkpoint-interval=" +
                             std::to_string(opts.checkpoint_interval));
            }
            if (opts.quick && entry.quick_extra[0] != '\0') {
              args.push_back(entry.quick_extra);
            }
            // A stale report from a previous attempt (or run) must never be
            // salvaged as this attempt's output.
            std::error_code remove_ec;
            fs::remove(report_path, remove_ec);
            run.status = RunProcess(args, opts.verbose ? "" : log_path.string(),
                                    opts.timeout_seconds);
            // Signal deaths (SIGSEGV, OOM-kill, ...) get one retry after a
            // short backoff: transient host pressure is common in CI, and a
            // deterministic crash still fails identically on the retry.
            // Timeouts are not retried — a second attempt would double the
            // wall-clock damage of a hung binary.
            if (!run.status.signaled || run.status.timed_out || run.retries >= 1) {
              break;
            }
            ++run.retries;
            {
              std::lock_guard<std::mutex> lock(print_mutex);
              std::printf("[bench_runner] %s %s; retrying once\n", name.c_str(),
                          run.status.Describe().c_str());
              std::fflush(stdout);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(500));
          }
          run.runner_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

          json::Value done = json::Value::Object();
          done.Set("event", "done");
          done.Set("binary", name);
          done.Set("exit", run.status.spawn_failed ? -1 : run.status.exit_code);
          if (run.status.signaled) {
            done.Set("signal", run.status.signal);
          }
          done.Set("timed_out", run.status.timed_out);
          done.Set("retries", run.retries);
          done.Set("runner_seconds", run.runner_seconds);
          json::Value reports = json::Value::Array();
          for (const std::string& p : run.report_paths) {
            reports.Append(p);
          }
          done.Set("reports", std::move(reports));
          journal.Append(done);
          return run;
        });
    const double suite_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - suite_start).count();

    // Merge serially in suite order, so the merged document (and any error
    // output) is identical no matter how the parallel schedule interleaved.
    for (size_t i = 0; i < to_run.size(); ++i) {
      const std::string name = to_run[i]->name;
      const BinaryRun& run = runs[i];
      const fs::path report_path = run.report_paths.empty()
                                       ? report_dir / (name + ".json")
                                       : fs::path(run.report_paths.back());
      const fs::path log_path = report_dir / (name + ".log");
      json::Value info = json::Value::Object();
      info.Set("exit", run.status.spawn_failed ? -1 : run.status.exit_code);
      if (run.status.signaled) {
        info.Set("signal", run.status.signal);
      }
      info.Set("timed_out", run.status.timed_out);
      info.Set("retries", run.retries);
      info.Set("runner_seconds", run.runner_seconds);
      if (run.from_journal) {
        info.Set("resumed", true);
      }
      // Every attempt's report path (retries write to stamped paths), so the
      // merged header records exactly which file each metric came from.
      json::Value report_list = json::Value::Array();
      for (const std::string& p : run.report_paths) {
        report_list.Append(p);
      }
      info.Set("reports", std::move(report_list));
      auto report = json::ParseFile(report_path.string());
      if (!run.status.ok()) {
        std::fprintf(stderr, "bench_runner: %s %s (log: %s)\n", name.c_str(),
                     run.status.Describe().c_str(), log_path.c_str());
        exit_code = 1;
        // Salvage: a binary that died after writing its report (a crash in
        // teardown, a timeout during a later phase) still contributes every
        // metric it produced — the gate then reports precisely what is
        // missing instead of failing the whole binary's coverage blind.
        if (!report.ok()) {
          info.Set("salvaged", false);
          binaries.Set(name, std::move(info));
          continue;
        }
        std::fprintf(stderr, "bench_runner: %s left a parseable report; salvaging %zu metrics\n",
                     name.c_str(),
                     report->Find("metrics") != nullptr ? report->Find("metrics")->size() : 0);
        info.Set("salvaged", true);
      } else if (!report.ok()) {
        std::fprintf(stderr, "bench_runner: %s\n", report.status().ToString().c_str());
        exit_code = 1;
        binaries.Set(name, std::move(info));
        continue;
      }
      info.Set("wall_seconds", report->NumberOr("wall_seconds", 0.0));
      binaries.Set(name, std::move(info));
      metrics.Set("runner/seconds/" + name, InfoMetric(run.runner_seconds));
      if (const json::Value* m = report->Find("metrics"); m != nullptr && m->is_object()) {
        for (const auto& [metric_name, metric] : m->members()) {
          if (metrics.Find(metric_name) != nullptr) {
            std::fprintf(stderr, "bench_runner: duplicate metric %s from %s\n",
                         metric_name.c_str(), name.c_str());
            exit_code = 1;
            continue;
          }
          metrics.Set(metric_name, metric);
        }
      }
    }
    // The wall-clock trajectory of the suite itself: info metrics, recorded
    // in every snapshot but never gated (they are host-dependent).
    metrics.Set("runner/wall_seconds", InfoMetric(suite_seconds));
    metrics.Set("runner/jobs", InfoMetric(total_jobs));

    // Host metadata, so future baseline snapshots are attributable.
    json::Value host = json::Value::Object();
    host.Set("jobs", total_jobs);
    host.Set("inner_jobs", inner_jobs);
    host.Set("hardware_concurrency", HardwareJobs());
    host.Set("compiler", CompilerString());
    merged.Set("host", std::move(host));
    merged.Set("binaries", std::move(binaries));
    merged.Set("metrics", std::move(metrics));
    std::printf("[bench_runner] suite wall-clock %.2fs (jobs=%d, per-binary jobs=%d)\n",
                suite_seconds, total_jobs, inner_jobs);

    if (Status s = json::WriteFileAtomic(opts.out, merged); !s.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[bench_runner] wrote %s (%zu metrics)\n", opts.out.c_str(),
                merged.Find("metrics")->size());
  }

  if (!opts.write_baseline.empty()) {
    if (Status s = json::WriteFileAtomic(opts.write_baseline, merged); !s.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[bench_runner] snapshot written to %s\n", opts.write_baseline.c_str());
  }

  if (!opts.check_determinism.empty()) {
    auto other = json::ParseFile(opts.check_determinism);
    if (!other.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", other.status().ToString().c_str());
      return 1;
    }
    const int mismatches = CountDeterminismMismatches(merged, *other);
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "bench_runner: determinism check FAILED: %d fidelity/perf metrics differ "
                   "from %s\n",
                   mismatches, opts.check_determinism.c_str());
      return 1;
    }
    std::printf("[bench_runner] determinism check ok: all fidelity/perf metrics identical "
                "to %s\n",
                opts.check_determinism.c_str());
  }

  if (!opts.gate) {
    return exit_code;
  }

  auto baseline = json::ParseFile(opts.baseline);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_runner: no baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }

  // Perf metrics warn while only the seed snapshot exists; once a second
  // snapshot for this mode lands in bench/baselines they gate like fidelity.
  int snapshots = 0;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(opts.baselines_dir, ec)) {
    const std::string file = dirent.path().filename().string();
    if (file.size() < 5 || file.substr(file.size() - 5) != ".json") {
      continue;
    }
    const bool is_quick = file.find("-quick") != std::string::npos;
    if (is_quick == opts.quick) {
      ++snapshots;
    }
  }
  eval::GateOptions gate_options;
  gate_options.gate_perf = snapshots >= 2;

  const eval::GateReport report = eval::CompareAgainstBaseline(merged, *baseline, gate_options);
  PrintGateReport(report, opts.baseline, gate_options.gate_perf);
  return report.ok() ? exit_code : 1;
}

}  // namespace memsentry

int main(int argc, char** argv) { return memsentry::Run(argc, argv); }

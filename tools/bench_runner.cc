// bench_runner — executes the whole benchmark suite, merges every binary's
// --json report into one BENCH_RESULTS.json, and gates the result against a
// committed baseline snapshot (bench/baselines/). Exits nonzero when a bench
// binary fails or a fidelity metric drifts beyond its tolerance, so CI can
// consume it directly.
//
//   bench_runner                      full suite (400k-instruction workloads)
//   bench_runner --quick              CI mode: 100k instructions, short substrate runs
//   bench_runner --only=fig3_address,table4_micro
//   bench_runner --skip=bench_substrate
//   bench_runner --out=BENCH_RESULTS.json
//   bench_runner --baseline=PATH      (default: bench/baselines/seed[-quick].json)
//   bench_runner --compare=RESULTS    gate an existing merged report, run nothing
//   bench_runner --write-baseline=P   also snapshot the merged report to P
//   bench_runner --no-gate            produce BENCH_RESULTS.json, skip comparison
//   bench_runner --verbose            stream per-binary stdout instead of logging
//                                     (forces --jobs=1 to keep output readable)
//   bench_runner --jobs=N             total parallelism budget: up to N bench
//                                     binaries run concurrently, and a lone
//                                     binary fans its sweeps out over N workers.
//                                     Default: hardware_concurrency. Results
//                                     are bit-identical for every N.
//   bench_runner --timeout=SECONDS    per-binary wall-clock budget (default
//                                     600; 0 disables). A binary over budget
//                                     gets SIGTERM, then SIGKILL after a
//                                     grace period, and is classified
//                                     "timed out" — distinct from a crash.
//                                     Binaries killed by any other signal are
//                                     retried once after a short backoff; a
//                                     parseable report left behind by a dead
//                                     binary is salvaged into the merged
//                                     document so the gate sees every metric
//                                     the run actually produced.
//   bench_runner --check-determinism=OTHER.json
//                                     require every fidelity/perf metric to be
//                                     byte-identical to OTHER (info metrics
//                                     such as wall-clock are exempt)
//   bench_runner --fastpath=MODE      run every binary with the simulator
//                                     fast paths forced on|off|check (exported
//                                     as MEMSENTRY_FASTPATH to the children).
//                                     Modeled results are bit-identical across
//                                     modes; "check" additionally validates
//                                     the fast paths in lockstep and aborts on
//                                     divergence. Default: the environment's
//                                     setting (effectively "on").
//   bench_runner --journal=PATH       suite journal location (default:
//                                     BENCH_JOURNAL.jsonl next to --out). The
//                                     runner write-ahead journals every binary
//                                     start/completion; each append rewrites
//                                     the journal atomically, so a kill -9 at
//                                     any point leaves a complete journal.
//   bench_runner --resume             resume a killed run from its journal:
//                                     binaries journaled as cleanly done (with
//                                     a parseable report on disk) are not
//                                     re-executed; in-flight or failed ones
//                                     re-run. The merged report and gate
//                                     verdict are identical to an
//                                     uninterrupted run's (the suite is
//                                     deterministic; host wall-clocks are info
//                                     metrics and never gated).
//   bench_runner --checkpoint-interval=N
//                                     forward per-cell checkpointing to the
//                                     bench binaries: every experiment cell
//                                     snapshots its simulation state each N
//                                     instructions (under
//                                     bench_reports/checkpoints/<binary>), so
//                                     --resume also resumes mid-cell.
//   bench_runner --engine=inproc|fork
//                                     inproc (the default) runs every
//                                     registered suite workload inside this
//                                     process through one warm
//                                     eval::CampaignEngine: cells scheduled
//                                     onto a persistent work-stealing pool,
//                                     one shared decode cache, and the suite
//                                     journal extended with per-cell events so
//                                     --resume restarts at cell — not binary —
//                                     granularity. Only bench_substrate still
//                                     forks (it measures host time and wants
//                                     an unshared process). fork keeps the
//                                     historical one-process-per-binary
//                                     isolation (CI crash-resume, --verbose
//                                     implies it). Fidelity/perf metrics are
//                                     bit-identical between the two engines.
//   bench_runner --engine=shard       fault-tolerant multi-process run: an
//                                     eval::ShardCoordinator dispatches every
//                                     registered workload's cells to
//                                     --workers=N `memsentry_cli serve`
//                                     subprocesses under time-bounded leases
//                                     (--lease=SECONDS), re-dispatching on
//                                     worker death/hang/garbage, quarantining
//                                     repeat offenders, and degrading to
//                                     in-process execution if the whole fleet
//                                     dies. --chaos=kill,hang,garble:seed=S
//                                     arms the workers' deterministic fault
//                                     harness. Fidelity/perf metrics stay
//                                     bit-identical to the other engines at
//                                     any worker count and chaos schedule;
//                                     coordinator/* info metrics record the
//                                     failure traffic.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "src/base/fastpath.h"
#include "src/base/json.h"
#include "src/base/thread_pool.h"
#include "src/eval/campaign_engine.h"
#include "src/eval/coordinator.h"
#include "src/eval/regression_gate.h"
#include "src/eval/report_builder.h"
#include "src/eval/run_memo.h"
#include "src/sim/decode_cache.h"
#include "src/suite/workloads.h"

#ifndef MEMSENTRY_SOURCE_DIR
#define MEMSENTRY_SOURCE_DIR "."
#endif

namespace memsentry {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kFullInstructions = 400'000;
constexpr uint64_t kQuickInstructions = 100'000;

struct SuiteEntry {
  const char* name;
  // Extra argv appended only in --quick mode (e.g. shorter substrate runs).
  const char* quick_extra = "";
};

// Every benchmark binary in bench/. bench_substrate measures host time via
// google-benchmark, so quick mode shrinks its minimum measuring time instead
// of its (unused) instruction budget.
const SuiteEntry kSuite[] = {
    {"table1_defenses"},
    {"table2_applicability"},
    {"table3_limits"},
    {"table4_micro"},
    {"fig3_address"},
    {"fig4_callret"},
    {"fig5_indirect"},
    {"fig6_syscall"},
    {"mprotect_baseline"},
    {"crypt_size_sweep"},
    {"safestack_casestudy"},
    {"attack_matrix"},
    {"attack_campaigns", "--campaigns=160"},
    {"fault_matrix"},
    {"ablations"},
    {"server_workload", "--quick"},
    {"microarch_stats"},
    // No "s" suffix: google-benchmark releases before 1.7 reject the suffixed
    // spelling and silently fall back to the 0.5s default per benchmark,
    // which quietly cost the quick suite several seconds of wall-clock.
    {"bench_substrate", "--benchmark_min_time=0.01"},
};

struct Options {
  bool quick = false;
  bool verbose = false;
  bool gate = true;
  bool resume = false;
  uint64_t instructions = 0;         // 0 = mode default
  uint64_t checkpoint_interval = 0;  // 0 = no per-cell checkpointing
  double timeout_seconds = 600;      // per-binary wall-clock budget; 0 = none
  int jobs = 0;                      // 0 = hardware_concurrency; 1 = fully serial
  std::string bench_dir;
  std::string out = "BENCH_RESULTS.json";
  std::string baseline;
  std::string baselines_dir;
  std::string compare_existing;
  std::string write_baseline;
  std::string check_determinism;
  std::string engine = "inproc";  // inproc | fork | shard
  std::string fastpath;           // empty = inherit the environment
  std::string journal;            // empty = BENCH_JOURNAL.jsonl next to --out
  int workers = 3;                // --engine=shard: serve subprocess count
  double lease_seconds = 20;      // --engine=shard: per-cell reply deadline
  std::string chaos;              // --engine=shard: worker chaos spec ("" = off)
  std::string worker_cli;         // --engine=shard: memsentry_cli path ("" = sibling)
  std::vector<std::string> only;
  std::vector<std::string> skip;
};

// Child-process outcome, decoded so logs and the merged report say exactly
// which way a binary died: clean exit code, signal, wall-clock timeout (our
// SIGTERM/SIGKILL — distinct from a crash), or spawn failure.
struct CommandStatus {
  bool spawn_failed = false;
  bool signaled = false;
  bool timed_out = false;
  int exit_code = 0;  // valid when !spawn_failed && !signaled
  int signal = 0;     // valid when signaled

  bool ok() const { return !spawn_failed && !signaled && !timed_out && exit_code == 0; }

  std::string Describe() const {
    char buf[64];
    if (spawn_failed) {
      return "failed to spawn";
    }
    if (timed_out) {
      return "timed out (killed)";
    }
    if (signaled) {
      std::snprintf(buf, sizeof(buf), "killed by signal %d", signal);
      return buf;
    }
    std::snprintf(buf, sizeof(buf), "exited with %d", exit_code);
    return buf;
  }
};

#ifndef _WIN32

// fork/exec with stdout+stderr redirected to `log_path` (empty = inherit,
// the --verbose path) and a wall-clock budget: a child over budget gets
// SIGTERM, then SIGKILL once the grace period lapses, so even a child that
// ignores SIGTERM cannot hang the suite. `timeout_seconds` <= 0 disables
// the budget.
CommandStatus RunProcess(const std::vector<std::string>& args, const std::string& log_path,
                         double timeout_seconds) {
  CommandStatus status;
  const pid_t pid = fork();
  if (pid < 0) {
    status.spawn_failed = true;
    return status;
  }
  if (pid == 0) {
    if (!log_path.empty()) {
      const int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        close(fd);
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }

  constexpr auto kPollInterval = std::chrono::milliseconds(20);
  constexpr auto kKillGrace = std::chrono::seconds(5);
  const auto start = std::chrono::steady_clock::now();
  const bool bounded = timeout_seconds > 0;
  const auto term_deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(bounded ? timeout_seconds : 0));
  bool sent_term = false;
  bool sent_kill = false;
  auto kill_deadline = term_deadline;

  for (;;) {
    int wstatus = 0;
    const pid_t reaped = waitpid(pid, &wstatus, WNOHANG);
    if (reaped == pid) {
      if (WIFSIGNALED(wstatus)) {
        status.signaled = true;
        status.signal = WTERMSIG(wstatus);
      } else if (WIFEXITED(wstatus)) {
        status.exit_code = WEXITSTATUS(wstatus);
      } else {
        status.spawn_failed = true;
      }
      // Death caused by our own escalation reports as a timeout, not as an
      // organic signal death (the two are gated and retried differently).
      status.timed_out = sent_term;
      return status;
    }
    if (reaped < 0) {
      status.spawn_failed = true;
      return status;
    }
    const auto now = std::chrono::steady_clock::now();
    if (bounded && !sent_term && now >= term_deadline) {
      kill(pid, SIGTERM);
      sent_term = true;
      kill_deadline = now + kKillGrace;
    } else if (sent_term && !sent_kill && now >= kill_deadline) {
      kill(pid, SIGKILL);
      sent_kill = true;
    }
    std::this_thread::sleep_for(kPollInterval);
  }
}

#else  // _WIN32: no fork; run unbounded through the shell.

CommandStatus RunProcess(const std::vector<std::string>& args, const std::string& log_path,
                         double) {
  std::string command;
  for (const std::string& arg : args) {
    command += "\"" + arg + "\" ";
  }
  if (!log_path.empty()) {
    command += "> \"" + log_path + "\" 2>&1";
  }
  CommandStatus status;
  const int raw = std::system(command.c_str());
  if (raw == -1) {
    status.spawn_failed = true;
  } else {
    status.exit_code = raw;
  }
  return status;
}

#endif

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item = csv.substr(start, comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

bool Contains(const std::vector<std::string>& list, const std::string& name) {
  for (const auto& item : list) {
    if (item == name) {
      return true;
    }
  }
  return false;
}

// Write-ahead suite journal: one JSON object per line — a header describing
// the run configuration, then {"event":"start"|"done",...} per binary and,
// under the in-process engine, one {"event":"cell",...} per finished cell.
// The header (and a resumed run's replayed prefix) goes through the
// temp-file+rename path; every event after that is appended with a single
// buffered write + flush. An engine run appends hundreds of cell events, so
// rewriting the whole file per event — the scheme binary-granular journaling
// used — would make journaling quadratic in suite size. The append can tear
// at most the line in flight under a kill -9; LoadJournal drops a torn tail
// and resumes from the last complete event.
class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}
  ~Journal() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }

  const std::string& path() const { return path_; }

  // Starts a fresh journal (overwrites any previous run's).
  void Start(const json::Value& header) {
    std::lock_guard<std::mutex> lock(mutex_);
    Reset(header.Dump(0) + "\n");
  }

  // Continues an existing journal (the --resume path). `existing` is the
  // complete-line prefix LoadJournal recovered, so a torn tail from the
  // killed run is dropped rather than appended after.
  void Continue(std::string existing) {
    std::lock_guard<std::mutex> lock(mutex_);
    Reset(existing);
  }

  void Append(const json::Value& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr) {
      return;
    }
    const std::string line = event.Dump(0) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0) {
      std::fprintf(stderr, "bench_runner: journal write failed: %s\n", path_.c_str());
    }
  }

 private:
  void Reset(const std::string& prefix) {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    if (Status s = json::WriteTextFileAtomic(path_, prefix); !s.ok()) {
      std::fprintf(stderr, "bench_runner: journal write failed: %s\n", s.ToString().c_str());
      return;
    }
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ == nullptr) {
      std::fprintf(stderr, "bench_runner: cannot append to journal %s\n", path_.c_str());
    }
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

// What a previous run's journal says about the suite: the run-configuration
// header, per binary the last completion event, and — engine runs — every
// completed cell's payload, keyed (workload, cell). Cell payloads are what
// make --resume cell-granular under --engine=inproc: a restored cell skips
// execution entirely and feeds its journaled payload straight to assembly.
struct JournalState {
  json::Value header;
  std::map<std::string, json::Value> done;  // binary name -> "done" event
  std::map<std::string, std::map<std::string, json::Value>> cells;  // workload -> cell -> payload
  std::string raw;                          // full text, continued on resume
};

StatusOr<JournalState> LoadJournal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("no journal at " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  JournalState state;
  state.raw = text;
  size_t start = 0;
  bool first = true;
  while (start < text.size()) {
    const size_t line_start = start;
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) {
      continue;
    }
    auto parsed = json::Parse(line);
    if (!parsed.ok()) {
      // A kill -9 can tear the event that was mid-append. Drop the torn tail
      // from the replayed prefix so Continue() never writes after a partial
      // line, and treat the rest as absent.
      state.raw = text.substr(0, line_start);
      break;
    }
    if (first) {
      if (parsed->Find("journal") == nullptr) {
        return InvalidArgument(path + " does not start with a journal header");
      }
      state.header = std::move(parsed).value();
      first = false;
      continue;
    }
    const std::string event = parsed->StringOr("event", "");
    if (event == "done") {
      state.done[parsed->StringOr("binary", "")] = std::move(parsed).value();
    } else if (event == "cell") {
      if (const json::Value* payload = parsed->Find("payload"); payload != nullptr) {
        state.cells[parsed->StringOr("binary", "")][parsed->StringOr("cell", "")] = *payload;
      }
    }
  }
  if (first) {
    return InvalidArgument(path + " is empty");
  }
  return state;
}

json::Value InfoMetric(double value) {
  json::Value entry = json::Value::Object();
  entry.Set("value", value);
  entry.Set("kind", "info");
  entry.Set("tol", 0.0);
  return entry;
}

// One binary's execution record, whether it ran as a child process or as an
// engine job.
struct BinaryRun {
  CommandStatus status;
  int retries = 0;            // signal deaths retried (at most once)
  double runner_seconds = 0;  // host wall-clock around the child process
  bool from_journal = false;  // completion taken from a resumed journal
  // Every attempt's report path; retries get stamped paths
  // (<name>.retry1.json) so no attempt ever overwrites another's output.
  std::vector<std::string> report_paths;
};

// Forks one bench binary the way the historical runner always has: journal
// start/done events, per-attempt report paths, one retry after an organic
// signal death. Used for every binary under --engine=fork, and for
// bench_substrate (never a registered workload — it measures host time and
// wants an unshared process) under --engine=inproc.
BinaryRun ExecuteForked(const SuiteEntry& entry, const Options& opts, uint64_t instructions,
                        int inner_jobs, const fs::path& report_dir, Journal& journal,
                        std::mutex& print_mutex) {
  const std::string name = entry.name;
  const fs::path binary = fs::path(opts.bench_dir) / name;
  const fs::path log_path = report_dir / (name + ".log");
  {
    std::lock_guard<std::mutex> lock(print_mutex);
    std::printf("[bench_runner] %s ...\n", name.c_str());
    std::fflush(stdout);
  }
  json::Value started = json::Value::Object();
  started.Set("event", "start");
  started.Set("binary", name);
  journal.Append(started);

  BinaryRun run;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const fs::path report_path =
        report_dir / (run.retries == 0
                          ? name + ".json"
                          : name + ".retry" + std::to_string(run.retries) + ".json");
    run.report_paths.push_back(report_path.string());
    std::vector<std::string> args = {
        binary.string(), "--json=" + report_path.string(),
        "--instructions=" + std::to_string(instructions),
        "--jobs=" + std::to_string(inner_jobs)};
    if (opts.checkpoint_interval > 0) {
      args.push_back("--checkpoint-dir=" + (report_dir / "checkpoints" / name).string());
      args.push_back("--checkpoint-interval=" + std::to_string(opts.checkpoint_interval));
    }
    if (opts.quick && entry.quick_extra[0] != '\0') {
      args.push_back(entry.quick_extra);
    }
    // A stale report from a previous attempt (or run) must never be
    // salvaged as this attempt's output.
    std::error_code remove_ec;
    fs::remove(report_path, remove_ec);
    run.status = RunProcess(args, opts.verbose ? "" : log_path.string(), opts.timeout_seconds);
    // Signal deaths (SIGSEGV, OOM-kill, ...) get one retry after a
    // short backoff: transient host pressure is common in CI, and a
    // deterministic crash still fails identically on the retry.
    // Timeouts are not retried — a second attempt would double the
    // wall-clock damage of a hung binary.
    if (!run.status.signaled || run.status.timed_out || run.retries >= 1) {
      break;
    }
    ++run.retries;
    {
      std::lock_guard<std::mutex> lock(print_mutex);
      std::printf("[bench_runner] %s %s; retrying once\n", name.c_str(),
                  run.status.Describe().c_str());
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
  run.runner_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  json::Value done = json::Value::Object();
  done.Set("event", "done");
  done.Set("binary", name);
  done.Set("exit", run.status.spawn_failed ? -1 : run.status.exit_code);
  if (run.status.signaled) {
    done.Set("signal", run.status.signal);
  }
  done.Set("timed_out", run.status.timed_out);
  done.Set("retries", run.retries);
  done.Set("runner_seconds", run.runner_seconds);
  json::Value reports = json::Value::Array();
  for (const std::string& p : run.report_paths) {
    reports.Append(p);
  }
  done.Set("reports", std::move(reports));
  journal.Append(done);
  return run;
}

// Folds one forked binary's outcome into the merged document: the header
// entry, runner/seconds, and the report's metrics — salvaging whatever a
// dead binary managed to write before it died.
void MergeForkedRun(const std::string& name, const BinaryRun& run, const fs::path& report_dir,
                    json::Value& binaries, json::Value& metrics, int& exit_code) {
  const fs::path report_path = run.report_paths.empty()
                                   ? report_dir / (name + ".json")
                                   : fs::path(run.report_paths.back());
  const fs::path log_path = report_dir / (name + ".log");
  json::Value info = json::Value::Object();
  info.Set("exit", run.status.spawn_failed ? -1 : run.status.exit_code);
  if (run.status.signaled) {
    info.Set("signal", run.status.signal);
  }
  info.Set("timed_out", run.status.timed_out);
  info.Set("retries", run.retries);
  info.Set("runner_seconds", run.runner_seconds);
  if (run.from_journal) {
    info.Set("resumed", true);
  }
  // Every attempt's report path (retries write to stamped paths), so the
  // merged header records exactly which file each metric came from.
  json::Value report_list = json::Value::Array();
  for (const std::string& p : run.report_paths) {
    report_list.Append(p);
  }
  info.Set("reports", std::move(report_list));
  auto report = json::ParseFile(report_path.string());
  if (!run.status.ok()) {
    std::fprintf(stderr, "bench_runner: %s %s (log: %s)\n", name.c_str(),
                 run.status.Describe().c_str(), log_path.c_str());
    exit_code = 1;
    // Salvage: a binary that died after writing its report (a crash in
    // teardown, a timeout during a later phase) still contributes every
    // metric it produced — the gate then reports precisely what is
    // missing instead of failing the whole binary's coverage blind.
    if (!report.ok()) {
      info.Set("salvaged", false);
      binaries.Set(name, std::move(info));
      return;
    }
    std::fprintf(stderr, "bench_runner: %s left a parseable report; salvaging %zu metrics\n",
                 name.c_str(),
                 report->Find("metrics") != nullptr ? report->Find("metrics")->size() : 0);
    info.Set("salvaged", true);
  } else if (!report.ok()) {
    std::fprintf(stderr, "bench_runner: %s\n", report.status().ToString().c_str());
    exit_code = 1;
    binaries.Set(name, std::move(info));
    return;
  }
  info.Set("wall_seconds", report->NumberOr("wall_seconds", 0.0));
  binaries.Set(name, std::move(info));
  metrics.Set("runner/seconds/" + name, InfoMetric(run.runner_seconds));
  if (const json::Value* m = report->Find("metrics"); m != nullptr && m->is_object()) {
    for (const auto& [metric_name, metric] : m->members()) {
      if (metrics.Find(metric_name) != nullptr) {
        std::fprintf(stderr, "bench_runner: duplicate metric %s from %s\n", metric_name.c_str(),
                     name.c_str());
        exit_code = 1;
        continue;
      }
      metrics.Set(metric_name, metric);
    }
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_runner [--quick] [--only=a,b] [--skip=a,b] [--out=PATH]\n"
               "                    [--bench-dir=DIR] [--baseline=PATH] [--no-gate]\n"
               "                    [--compare=RESULTS] [--write-baseline=PATH]\n"
               "                    [--instructions=N] [--jobs=N] [--timeout=SECONDS]\n"
               "                    [--verbose] [--check-determinism=OTHER.json]\n"
               "                    [--fastpath=on|off|check] [--journal=PATH]\n"
               "                    [--resume] [--checkpoint-interval=N]\n"
               "                    [--engine=inproc|fork|shard] [--workers=N]\n"
               "                    [--lease=SECONDS] [--chaos=SPEC] [--worker-cli=PATH]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--no-gate") {
      opts.gate = false;
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (const char* v = value("--journal")) {
      opts.journal = v;
    } else if (const char* v = value("--checkpoint-interval")) {
      opts.checkpoint_interval = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--only")) {
      opts.only = SplitCsv(v);
    } else if (const char* v = value("--skip")) {
      opts.skip = SplitCsv(v);
    } else if (const char* v = value("--out")) {
      opts.out = v;
    } else if (const char* v = value("--bench-dir")) {
      opts.bench_dir = v;
    } else if (const char* v = value("--baseline")) {
      opts.baseline = v;
    } else if (const char* v = value("--baselines-dir")) {
      opts.baselines_dir = v;
    } else if (const char* v = value("--compare")) {
      opts.compare_existing = v;
    } else if (const char* v = value("--write-baseline")) {
      opts.write_baseline = v;
    } else if (const char* v = value("--instructions")) {
      opts.instructions = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--jobs")) {
      opts.jobs = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--timeout")) {
      opts.timeout_seconds = std::strtod(v, nullptr);
    } else if (const char* v = value("--check-determinism")) {
      opts.check_determinism = v;
    } else if (const char* v = value("--fastpath")) {
      opts.fastpath = v;
    } else if (const char* v = value("--engine")) {
      opts.engine = v;
    } else if (const char* v = value("--workers")) {
      opts.workers = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--lease")) {
      opts.lease_seconds = std::strtod(v, nullptr);
    } else if (const char* v = value("--chaos")) {
      opts.chaos = v;
    } else if (const char* v = value("--worker-cli")) {
      opts.worker_cli = v;
    } else {
      std::fprintf(stderr, "bench_runner: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// The bench binaries live next to this binary's parent: build/tools/../bench.
std::string DefaultBenchDir(const char* argv0) {
  std::error_code ec;
  fs::path self = fs::canonical(fs::path(argv0), ec);
  if (ec) {
    self = fs::path(argv0);
  }
  return (self.parent_path().parent_path() / "bench").string();
}

const char* CompilerString() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

// Compares every fidelity/perf metric of `results` and `other` for exact
// (bitwise double) equality in both directions. Info metrics — wall clocks,
// host-side benchmark times, jobs — and host-flagged perf metrics
// (sim_instr_per_second) legitimately differ between runs and are exempt.
// Returns the number of mismatches, printing each.
int CountDeterminismMismatches(const json::Value& results, const json::Value& other) {
  const json::Value* a = results.Find("metrics");
  const json::Value* b = other.Find("metrics");
  if (a == nullptr || !a->is_object() || b == nullptr || !b->is_object()) {
    std::fprintf(stderr, "bench_runner: determinism check needs \"metrics\" in both files\n");
    return 1;
  }
  int mismatches = 0;
  for (const auto& [name, entry] : a->members()) {
    if (eval::ParseMetricKind(entry.StringOr("kind", "info")) == eval::MetricKind::kInfo ||
        entry.BoolOr("host", false)) {
      continue;
    }
    const json::Value* peer = b->Find(name);
    if (peer == nullptr) {
      std::fprintf(stderr, "  [determinism] %s: missing from other run\n", name.c_str());
      ++mismatches;
      continue;
    }
    const double va = entry.NumberOr("value", 0.0);
    const double vb = peer->NumberOr("value", 0.0);
    if (va != vb) {
      std::fprintf(stderr, "  [determinism] %s: %.17g != %.17g\n", name.c_str(), va, vb);
      ++mismatches;
    }
  }
  for (const auto& [name, entry] : b->members()) {
    if (eval::ParseMetricKind(entry.StringOr("kind", "info")) == eval::MetricKind::kInfo ||
        entry.BoolOr("host", false)) {
      continue;
    }
    if (a->Find(name) == nullptr) {
      std::fprintf(stderr, "  [determinism] %s: missing from this run\n", name.c_str());
      ++mismatches;
    }
  }
  return mismatches;
}

int Severity3(eval::Severity s) {
  return s == eval::Severity::kFailure ? 2 : s == eval::Severity::kWarning ? 1 : 0;
}

void PrintGateReport(const eval::GateReport& report, const std::string& baseline_path,
                     bool perf_gated) {
  std::printf("\n---- regression gate vs %s ----\n", baseline_path.c_str());
  std::printf("perf metrics: %s\n",
              perf_gated ? "gated (>=2 baseline snapshots)" : "warn-only (single baseline)");
  for (int severity = 2; severity >= 0; --severity) {
    for (const auto& issue : report.issues) {
      if (Severity3(issue.severity) != severity) {
        continue;
      }
      const char* tag = severity == 2 ? "FAIL" : severity == 1 ? "warn" : "note";
      std::printf("  [%s] %s: %s\n", tag, issue.metric.c_str(), issue.message.c_str());
    }
  }
  std::printf("gate: %s (%s)\n", report.ok() ? "PASS" : "FAIL", report.Summary().c_str());
}

}  // namespace

int Run(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) {
    return Usage();
  }
  if (opts.engine != "inproc" && opts.engine != "fork" && opts.engine != "shard") {
    std::fprintf(stderr, "bench_runner: bad --engine value '%s' (want inproc|fork|shard)\n",
                 opts.engine.c_str());
    return 2;
  }
  if (!opts.fastpath.empty()) {
    base::FastPathMode mode;
    if (!base::ParseFastPathMode(opts.fastpath.c_str(), &mode)) {
      std::fprintf(stderr, "bench_runner: bad --fastpath value '%s' (want on|off|check)\n",
                   opts.fastpath.c_str());
      return 2;
    }
#ifndef _WIN32
    // Exported (not just set in-process): the bench binaries are child
    // processes and pick the mode up from their own environment.
    ::setenv("MEMSENTRY_FASTPATH", base::FastPathModeName(mode), /*overwrite=*/1);
#endif
    base::SetFastPathMode(mode);
  }
  const uint64_t instructions =
      opts.instructions != 0 ? opts.instructions
                             : (opts.quick ? kQuickInstructions : kFullInstructions);
  if (opts.bench_dir.empty()) {
    opts.bench_dir = DefaultBenchDir(argv[0]);
  }
  if (opts.baselines_dir.empty()) {
    opts.baselines_dir = std::string(MEMSENTRY_SOURCE_DIR) + "/bench/baselines";
  }
  if (opts.baseline.empty()) {
    opts.baseline =
        opts.baselines_dir + (opts.quick ? "/seed-quick.json" : "/seed.json");
  }

  json::Value merged = json::Value::Object();
  int exit_code = 0;

  if (!opts.compare_existing.empty()) {
    auto loaded = json::ParseFile(opts.compare_existing);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    merged = std::move(loaded).value();
  } else {
    const fs::path report_dir = fs::path(opts.out).parent_path() / "bench_reports";
    std::error_code ec;
    fs::create_directories(report_dir, ec);
    if (ec) {
      std::fprintf(stderr, "bench_runner: cannot create %s: %s\n", report_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }

    // Reject --only/--skip names that match nothing: a typo would otherwise
    // run an empty suite and fail the gate with hundreds of "missing metric"
    // errors instead of naming the bad selector.
    for (const std::vector<std::string>* selector : {&opts.only, &opts.skip}) {
      for (const std::string& name : *selector) {
        bool known = false;
        for (const SuiteEntry& entry : kSuite) {
          known = known || name == entry.name;
        }
        if (!known) {
          std::fprintf(stderr, "bench_runner: unknown benchmark '%s' in --only/--skip\n",
                       name.c_str());
          return 2;
        }
      }
    }

    merged.Set("schema", 1);
    merged.Set("suite", "memsentry-bench");
    merged.Set("mode", opts.quick ? "quick" : "full");
    merged.Set("instructions", instructions);
    merged.Set("fastpath", opts.fastpath.empty() ? "default" : opts.fastpath);
    json::Value binaries = json::Value::Object();
    json::Value metrics = json::Value::Object();

    // --verbose streams child stdout, which only exists with child
    // processes, so it implies the fork engine.
    const bool inproc = opts.engine == "inproc" && !opts.verbose;
    const bool shard = opts.engine == "shard" && !opts.verbose;
    const char* engine_name = inproc ? "inproc" : shard ? "shard" : "fork";

    // The suite journal. A fresh run writes a new header; --resume validates
    // the existing header against this invocation's configuration (merging
    // two differently-configured runs would silently gate garbage) and
    // collects the binaries already journaled as done — plus, under the
    // inproc engine, every cell already journaled with its payload.
    const std::string journal_path =
        opts.journal.empty() ? (fs::path(opts.out).parent_path() / "BENCH_JOURNAL.jsonl").string()
                             : opts.journal;
    Journal journal(journal_path);
    json::Value journal_header = json::Value::Object();
    journal_header.Set("journal", 1);
    journal_header.Set("mode", opts.quick ? "quick" : "full");
    journal_header.Set("instructions", instructions);
    journal_header.Set("fastpath", opts.fastpath.empty() ? "default" : opts.fastpath);
    journal_header.Set("engine", engine_name);
    journal_header.Set("out", opts.out);
    std::map<std::string, json::Value> journaled_done;
    std::map<std::string, std::map<std::string, json::Value>> journal_cells;
    bool resuming = false;
    if (opts.resume) {
      auto previous = LoadJournal(journal_path);
      if (!previous.ok()) {
        std::fprintf(stderr, "bench_runner: --resume: %s; starting fresh\n",
                     previous.status().ToString().c_str());
      } else if (previous->header.Dump(0) != journal_header.Dump(0)) {
        std::fprintf(stderr,
                     "bench_runner: --resume: journal %s was written by a differently "
                     "configured run\n  journal: %s\n  this run: %s\n",
                     journal_path.c_str(), previous->header.Dump(0).c_str(),
                     journal_header.Dump(0).c_str());
        return 2;
      } else {
        journaled_done = std::move(previous->done);
        journal_cells = std::move(previous->cells);
        journal.Continue(std::move(previous->raw));
        resuming = true;
      }
    }
    if (!resuming) {
      journal.Start(journal_header);
    }
#ifndef _WIN32
    // The crash handler in each bench binary snapshots the journal tail into
    // its bundles.
    std::error_code abs_ec;
    const fs::path abs_journal = fs::absolute(journal_path, abs_ec);
    ::setenv("MEMSENTRY_JOURNAL", (abs_ec ? fs::path(journal_path) : abs_journal).c_str(),
             /*overwrite=*/1);
#endif

    // Select the binaries to run; missing ones are reported up front so a
    // half-built tree fails fast instead of mid-suite.
    std::vector<const SuiteEntry*> to_run;
    for (const SuiteEntry& entry : kSuite) {
      const std::string name = entry.name;
      if (!opts.only.empty() && !Contains(opts.only, name)) {
        continue;
      }
      if (Contains(opts.skip, name)) {
        continue;
      }
      if (!fs::exists(fs::path(opts.bench_dir) / name)) {
        std::fprintf(stderr, "bench_runner: missing binary %s (build the bench targets)\n",
                     (fs::path(opts.bench_dir) / name).c_str());
        exit_code = 1;
        continue;
      }
      to_run.push_back(&entry);
    }

    // The parallelism budget. Under --engine=inproc the whole budget goes to
    // the engine's work-stealing pool (cell granularity beats binary
    // granularity, so there is no slot split) and forked stragglers run
    // serially alongside it. Under --engine=fork it splits between
    // scheduling binaries concurrently (bounded job slots) and each binary's
    // own sweep fan-out: with more binaries than budget every binary runs
    // its sweeps serially; a lone binary (--only=fig3_address) gets the
    // whole budget for its cells. --verbose streams child stdout, so it
    // forces a fully serial fork run.
    const int total_jobs = opts.verbose ? 1 : ResolveJobs(opts.jobs);
    const int slots = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(total_jobs), std::max<size_t>(to_run.size(), 1)));
    const int inner_jobs = inproc ? 1 : std::max(1, total_jobs / slots);

    // Resumable completions: journaled as done with a clean exit and a
    // parseable final report still on disk. Anything else (in-flight at the
    // kill, crashed, report missing) re-runs.
    std::map<std::string, BinaryRun> resumable;
    for (const auto& [name, event] : journaled_done) {
      BinaryRun run;
      run.from_journal = true;
      const int exit = static_cast<int>(event.NumberOr("exit", -1));
      run.status.spawn_failed = exit < 0;
      run.status.exit_code = exit < 0 ? 0 : exit;
      if (const json::Value* sig = event.Find("signal"); sig != nullptr) {
        run.status.signaled = true;
        run.status.signal = static_cast<int>(sig->number_value());
      }
      run.status.timed_out = event.BoolOr("timed_out", false);
      run.retries = static_cast<int>(event.NumberOr("retries", 0));
      run.runner_seconds = event.NumberOr("runner_seconds", 0.0);
      if (const json::Value* reports = event.Find("reports");
          reports != nullptr && reports->is_array()) {
        for (const json::Value& p : reports->items()) {
          run.report_paths.push_back(p.string_value());
        }
      }
      if (run.status.ok() && !run.report_paths.empty() &&
          json::ParseFile(run.report_paths.back()).ok()) {
        resumable.emplace(name, std::move(run));
      }
    }

    std::mutex print_mutex;
    const auto suite_start = std::chrono::steady_clock::now();
    std::vector<BinaryRun> runs(to_run.size());
    // Per-entry engine results (nullptr = the entry was forked). The engine
    // object must outlive these pointers, hence the optional below.
    std::vector<const eval::JobReport*> engine_reports(to_run.size(), nullptr);
    eval::EngineStats engine_stats;
    sim::DecodeCacheStats decode_stats;
    int engine_workers = 0;
    std::unique_ptr<eval::CampaignEngine> engine;
    // Shard engine state: the coordinator must outlive engine_reports (its
    // JobReports back them), exactly like `engine` above.
    std::unique_ptr<eval::ShardCoordinator> coordinator;
    eval::CoordinatorStats coordinator_stats;

    if (inproc) {
      eval::EngineOptions engine_options;
      // Escape hatch for memo bisection: MEMSENTRY_NO_RUN_MEMO=1 runs every
      // cell from scratch. Results must not change (the determinism check
      // passes either way) — only the wall-clock does.
      engine_options.run_memo = std::getenv("MEMSENTRY_NO_RUN_MEMO") == nullptr;
      engine_options.jobs = total_jobs;
      // Cell-granular durability: every finished cell's payload is journaled
      // (Journal::Append serializes), and on --resume the journaled payloads
      // mark their cells done at submit time — a kill -9 mid-suite costs at
      // most the cells that were in flight.
      engine_options.restore = [&journal_cells](
                                   const std::string& workload,
                                   const std::string& cell) -> const json::Value* {
        const auto wit = journal_cells.find(workload);
        if (wit == journal_cells.end()) {
          return nullptr;
        }
        const auto cit = wit->second.find(cell);
        return cit == wit->second.end() ? nullptr : &cit->second;
      };
      engine_options.on_cell_done = [&journal](const std::string& workload,
                                               const std::string& cell,
                                               const json::Value& payload) {
        json::Value event = json::Value::Object();
        event.Set("event", "cell");
        event.Set("binary", workload);
        event.Set("cell", cell);
        event.Set("payload", payload);
        journal.Append(event);
      };
      // Engine-wide decode statistics start from zero so the merged report's
      // engine/decode_cache_* metrics describe exactly this suite run.
      sim::DecodeCache::Global().ResetStats();
      engine = std::make_unique<eval::CampaignEngine>(&suite::SuiteRegistry(), engine_options);
      engine_workers = engine->jobs();

      // Submit every registered workload up front: the engine interleaves
      // all of their cells across its workers, so a straggler workload soaks
      // up the whole pool instead of serializing behind a slot schedule.
      std::vector<uint64_t> job_ids(to_run.size(), 0);
      for (size_t i = 0; i < to_run.size(); ++i) {
        const SuiteEntry& entry = *to_run[i];
        if (suite::FindSuiteWorkload(entry.name) == nullptr) {
          continue;  // forked below, concurrently with the engine's drain
        }
        eval::WorkloadOptions woptions;
        woptions.experiment.target_instructions = instructions;
        if (opts.checkpoint_interval > 0) {
          woptions.experiment.checkpoint_dir =
              (report_dir / "checkpoints" / entry.name).string();
          std::error_code checkpoint_ec;
          fs::create_directories(woptions.experiment.checkpoint_dir, checkpoint_ec);
          woptions.experiment.checkpoint_interval = opts.checkpoint_interval;
        }
        if (opts.quick && entry.quick_extra[0] != '\0') {
          // The same token the forked binary would receive on its argv.
          const char* extra_argv[] = {"bench_runner", entry.quick_extra};
          eval::ParseWorkloadArgs(2, const_cast<char**>(extra_argv), woptions);
        }
        {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::printf("[bench_runner] %s (engine) ...\n", entry.name);
          std::fflush(stdout);
        }
        json::Value started = json::Value::Object();
        started.Set("event", "start");
        started.Set("binary", entry.name);
        journal.Append(started);
        job_ids[i] = engine->Submit(entry.name, woptions);
      }

      // bench_substrate (and anything else unregistered) forks on this
      // thread while the engine's workers chew through the cell queues.
      for (size_t i = 0; i < to_run.size(); ++i) {
        if (job_ids[i] != 0) {
          continue;
        }
        const std::string name = to_run[i]->name;
        if (const auto it = resumable.find(name); it != resumable.end()) {
          std::printf("[bench_runner] %s (done; resumed from journal)\n", name.c_str());
          std::fflush(stdout);
          runs[i] = it->second;
          continue;
        }
        runs[i] = ExecuteForked(*to_run[i], opts, instructions, inner_jobs, report_dir,
                                journal, print_mutex);
      }

      for (size_t i = 0; i < to_run.size(); ++i) {
        if (job_ids[i] == 0) {
          continue;
        }
        const eval::JobReport* job = engine->Wait(job_ids[i]);
        engine_reports[i] = job;
        size_t restored = 0;
        for (size_t c = 0; c < job->cell_restored.size(); ++c) {
          restored += job->cell_restored[c] ? 1 : 0;
        }
        {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::printf("[bench_runner] %s done: %zu cells (%zu restored) in %.2fs\n",
                      job->workload.c_str(), job->cell_names.size(), restored,
                      job->wall_seconds);
          std::fflush(stdout);
        }
        json::Value done = json::Value::Object();
        done.Set("event", "done");
        done.Set("binary", job->workload);
        done.Set("exit", job->status);
        done.Set("timed_out", false);
        done.Set("retries", 0);
        done.Set("runner_seconds", job->wall_seconds);
        done.Set("cells", static_cast<uint64_t>(job->cell_names.size()));
        done.Set("reports", json::Value::Array());
        journal.Append(done);
      }
      engine_stats = engine->stats();
      decode_stats = sim::DecodeCache::Global().stats();
    } else if (shard) {
      eval::CoordinatorOptions coptions;
      coptions.workers = opts.workers;
      coptions.lease_seconds = opts.lease_seconds;
      coptions.socket_dir = (report_dir / "coordinator").string();
      // Workers are the memsentry_cli sibling of this binary unless
      // overridden (tests point --worker-cli at the build tree).
      if (!opts.worker_cli.empty()) {
        coptions.worker_cli = opts.worker_cli;
      } else {
        std::error_code self_ec;
        fs::path self = fs::canonical(fs::path(argv[0]), self_ec);
        if (self_ec) {
          self = fs::path(argv[0]);
        }
        coptions.worker_cli = (self.parent_path() / "memsentry_cli").string();
      }
      if (!opts.chaos.empty()) {
        auto chaos = eval::ParseChaosSpec(opts.chaos);
        if (!chaos.ok()) {
          std::fprintf(stderr, "bench_runner: --chaos: %s\n",
                       chaos.status().ToString().c_str());
          return 2;
        }
        coptions.chaos = *chaos;
      }
      // The same cell-granular durability hooks the inproc engine wires up:
      // restored cells skip dispatch entirely, completed cells journal their
      // payloads (the coordinator calls back from its own thread only).
      coptions.restore = [&journal_cells](const std::string& workload,
                                          const std::string& cell) -> const json::Value* {
        const auto wit = journal_cells.find(workload);
        if (wit == journal_cells.end()) {
          return nullptr;
        }
        const auto cit = wit->second.find(cell);
        return cit == wit->second.end() ? nullptr : &cit->second;
      };
      coptions.on_cell_done = [&journal](const std::string& workload, const std::string& cell,
                                         const json::Value& payload) {
        json::Value event = json::Value::Object();
        event.Set("event", "cell");
        event.Set("binary", workload);
        event.Set("cell", cell);
        event.Set("payload", payload);
        journal.Append(event);
      };
      coordinator = std::make_unique<eval::ShardCoordinator>(&suite::SuiteRegistry(), coptions);

      // Submit every registered workload; mid-cell checkpointing is not
      // forwarded over the wire (workers build cells from the recipe alone),
      // so --checkpoint-interval is an inproc/fork-only feature.
      std::vector<size_t> shard_index(to_run.size(), static_cast<size_t>(-1));
      for (size_t i = 0; i < to_run.size(); ++i) {
        const SuiteEntry& entry = *to_run[i];
        if (suite::FindSuiteWorkload(entry.name) == nullptr) {
          continue;  // forked below, concurrently with the coordinator's drain
        }
        // Identical option construction to the inproc branch (note: quick
        // mode flows through the instruction budget and quick_extra argv,
        // not WorkloadOptions::quick) — any divergence here breaks the
        // bit-identity contract between engines.
        eval::WorkloadOptions woptions;
        woptions.experiment.target_instructions = instructions;
        if (opts.quick && entry.quick_extra[0] != '\0') {
          const char* extra_argv[] = {"bench_runner", entry.quick_extra};
          eval::ParseWorkloadArgs(2, const_cast<char**>(extra_argv), woptions);
        }
        {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::printf("[bench_runner] %s (shard) ...\n", entry.name);
          std::fflush(stdout);
        }
        json::Value started = json::Value::Object();
        started.Set("event", "start");
        started.Set("binary", entry.name);
        journal.Append(started);
        const uint64_t id = coordinator->Submit(entry.name, woptions);
        if (id != 0) {
          shard_index[i] = static_cast<size_t>(id - 1);
        }
      }

      // Drive the fleet on its own thread while unregistered binaries
      // (bench_substrate) fork on this one.
      std::thread coordinator_thread([&coordinator] { (void)coordinator->Run(); });
      for (size_t i = 0; i < to_run.size(); ++i) {
        if (shard_index[i] != static_cast<size_t>(-1)) {
          continue;
        }
        const std::string name = to_run[i]->name;
        if (const auto it = resumable.find(name); it != resumable.end()) {
          std::printf("[bench_runner] %s (done; resumed from journal)\n", name.c_str());
          std::fflush(stdout);
          runs[i] = it->second;
          continue;
        }
        runs[i] = ExecuteForked(*to_run[i], opts, instructions, inner_jobs, report_dir,
                                journal, print_mutex);
      }
      coordinator_thread.join();
      coordinator_stats = coordinator->stats();

      for (size_t i = 0; i < to_run.size(); ++i) {
        if (shard_index[i] == static_cast<size_t>(-1)) {
          continue;
        }
        const eval::JobReport* job = coordinator->reports()[shard_index[i]].get();
        engine_reports[i] = job;
        size_t restored = 0;
        for (size_t c = 0; c < job->cell_restored.size(); ++c) {
          restored += job->cell_restored[c] ? 1 : 0;
        }
        {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::printf("[bench_runner] %s done: %zu cells (%zu restored) in %.2fs\n",
                      job->workload.c_str(), job->cell_names.size(), restored,
                      job->wall_seconds);
          std::fflush(stdout);
        }
        json::Value done = json::Value::Object();
        done.Set("event", "done");
        done.Set("binary", job->workload);
        done.Set("exit", job->status);
        done.Set("timed_out", false);
        done.Set("retries", 0);
        done.Set("runner_seconds", job->wall_seconds);
        done.Set("cells", static_cast<uint64_t>(job->cell_names.size()));
        done.Set("reports", json::Value::Array());
        journal.Append(done);
      }
    } else {
      runs = ParallelMap(slots, to_run.size(), [&](size_t i) -> BinaryRun {
        const SuiteEntry& entry = *to_run[i];
        if (const auto it = resumable.find(entry.name); it != resumable.end()) {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::printf("[bench_runner] %s (done; resumed from journal)\n", entry.name);
          std::fflush(stdout);
          return it->second;
        }
        return ExecuteForked(entry, opts, instructions, inner_jobs, report_dir, journal,
                             print_mutex);
      });
    }
    const double suite_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - suite_start).count();

    // Merge serially in suite order, so the merged document (and any error
    // output) is identical no matter how the parallel schedule interleaved.
    for (size_t i = 0; i < to_run.size(); ++i) {
      const std::string name = to_run[i]->name;
      if (engine_reports[i] == nullptr) {
        MergeForkedRun(name, runs[i], report_dir, binaries, metrics, exit_code);
        continue;
      }
      const eval::JobReport& job = *engine_reports[i];
      size_t restored = 0;
      for (size_t c = 0; c < job.cell_restored.size(); ++c) {
        restored += job.cell_restored[c] ? 1 : 0;
      }
      json::Value info = json::Value::Object();
      info.Set("exit", job.status);
      info.Set("timed_out", false);
      info.Set("retries", 0);
      info.Set("runner_seconds", job.wall_seconds);
      info.Set("engine", engine_name);
      info.Set("cells", static_cast<uint64_t>(job.cell_names.size()));
      if (restored > 0) {
        info.Set("cells_restored", static_cast<uint64_t>(restored));
        info.Set("resumed", true);
      }
      info.Set("reports", json::Value::Array());
      info.Set("wall_seconds", job.wall_seconds);
      if (job.state != eval::JobState::kDone || job.status != 0) {
        std::fprintf(stderr, "bench_runner: %s (engine) finished %s with status %d\n",
                     name.c_str(), eval::JobStateName(job.state), job.status);
        exit_code = 1;
      }
      binaries.Set(name, std::move(info));
      metrics.Set("runner/seconds/" + name, InfoMetric(job.wall_seconds));
      for (const auto& [metric_name, metric] : job.report.metrics().members()) {
        if (metrics.Find(metric_name) != nullptr) {
          std::fprintf(stderr, "bench_runner: duplicate metric %s from %s\n",
                       metric_name.c_str(), name.c_str());
          exit_code = 1;
          continue;
        }
        metrics.Set(metric_name, metric);
      }
      // The trailer bench::Reporter::Finish appends after a standalone run's
      // metric stream, so the merged document keeps the same shape in both
      // engines (both are host wall-clock derived, info / host-perf kinds —
      // never part of the determinism contract).
      metrics.Set(name + "/wall_seconds", InfoMetric(job.wall_seconds));
      if (job.report.sim_instructions() > 0 && job.wall_seconds > 0) {
        json::Value throughput = json::Value::Object();
        throughput.Set("value", job.report.sim_instructions() / job.wall_seconds);
        throughput.Set("kind", "perf");
        throughput.Set("tol", eval::kHostThroughputTol);
        throughput.Set("host", true);
        metrics.Set(name + "/sim_instr_per_second", std::move(throughput));
      }
    }
    if (inproc || shard) {
      // Where the suite's wall-clock actually went, at the engine's
      // scheduling granularity. tools/ci/check_gate.sh wall-summary surfaces
      // the slowest cells from these; all info-kind, never gated.
      for (size_t i = 0; i < to_run.size(); ++i) {
        if (engine_reports[i] == nullptr) {
          continue;
        }
        const eval::JobReport& job = *engine_reports[i];
        for (size_t c = 0; c < job.cell_names.size(); ++c) {
          metrics.Set("engine/seconds/" + job.workload + "/" + job.cell_names[c],
                      InfoMetric(job.cell_seconds[c]));
        }
      }
    }
    if (shard) {
      // The coordinator's failure traffic. All info-kind: every counter is
      // host-timing-dependent (a loaded machine expires leases chaos never
      // touched), so none participate in gating or the determinism check —
      // the fidelity/perf stream above is what stays bit-identical.
      metrics.Set("coordinator/cells_total",
                  InfoMetric(static_cast<double>(coordinator_stats.cells_total)));
      metrics.Set("coordinator/cells_dispatched",
                  InfoMetric(static_cast<double>(coordinator_stats.cells_dispatched)));
      metrics.Set("coordinator/cells_redispatched",
                  InfoMetric(static_cast<double>(coordinator_stats.cells_redispatched)));
      metrics.Set("coordinator/cells_inlined",
                  InfoMetric(static_cast<double>(coordinator_stats.cells_inlined)));
      metrics.Set("coordinator/lease_expiries",
                  InfoMetric(static_cast<double>(coordinator_stats.lease_expiries)));
      metrics.Set("coordinator/garbled_replies",
                  InfoMetric(static_cast<double>(coordinator_stats.garbled_replies)));
      metrics.Set("coordinator/connect_retries",
                  InfoMetric(static_cast<double>(coordinator_stats.connect_retries)));
      metrics.Set("coordinator/workers_respawned",
                  InfoMetric(static_cast<double>(coordinator_stats.workers_respawned)));
      metrics.Set("coordinator/workers_quarantined",
                  InfoMetric(static_cast<double>(coordinator_stats.workers_quarantined)));
      metrics.Set("coordinator/degraded",
                  InfoMetric(coordinator_stats.degraded ? 1.0 : 0.0));
    }
    if (inproc) {
      metrics.Set("engine/cells_run", InfoMetric(static_cast<double>(engine_stats.cells_run)));
      metrics.Set("engine/cells_restored",
                  InfoMetric(static_cast<double>(engine_stats.cells_restored)));
      metrics.Set("engine/steals", InfoMetric(static_cast<double>(engine_stats.steals)));
      metrics.Set("engine/decode_cache_hit_rate", InfoMetric(decode_stats.HitRate()));
      metrics.Set("engine/decode_cache_lowerings",
                  InfoMetric(static_cast<double>(decode_stats.misses)));
      const eval::RunMemo::Stats memo_stats = eval::RunMemo::Global().stats();
      metrics.Set("engine/run_memo_hit_rate", InfoMetric(memo_stats.HitRate()));
      metrics.Set("engine/run_memo_hits", InfoMetric(static_cast<double>(memo_stats.hits)));
    }
    // The wall-clock trajectory of the suite itself: info metrics, recorded
    // in every snapshot but never gated (they are host-dependent).
    metrics.Set("runner/wall_seconds", InfoMetric(suite_seconds));
    metrics.Set("runner/jobs", InfoMetric(total_jobs));

    // Which engine produced the document, plus — inproc — the engine-wide
    // aggregates (work-stealing traffic and the shared decode cache's
    // efficacy across every workload in this one warm process).
    json::Value engine_header = json::Value::Object();
    engine_header.Set("engine", engine_name);
    if (inproc) {
      engine_header.Set("jobs", engine_workers);
      engine_header.Set("cells_run", engine_stats.cells_run);
      engine_header.Set("cells_restored", engine_stats.cells_restored);
      engine_header.Set("steals", engine_stats.steals);
      engine_header.Set("decode_cache_hit_rate", decode_stats.HitRate());
      engine_header.Set("decode_cache_lowerings", decode_stats.misses);
    }
    if (shard) {
      engine_header.Set("workers", opts.workers);
      engine_header.Set("lease_seconds", opts.lease_seconds);
      engine_header.Set("chaos", opts.chaos);
      engine_header.Set("cells_restored", coordinator_stats.cells_restored);
      engine_header.Set("cells_redispatched", coordinator_stats.cells_redispatched);
      engine_header.Set("workers_quarantined", coordinator_stats.workers_quarantined);
      engine_header.Set("degraded", coordinator_stats.degraded);
    }
    merged.Set("engine", std::move(engine_header));

    // Host metadata, so future baseline snapshots are attributable.
    json::Value host = json::Value::Object();
    host.Set("jobs", total_jobs);
    host.Set("inner_jobs", inner_jobs);
    host.Set("hardware_concurrency", HardwareJobs());
    host.Set("compiler", CompilerString());
    merged.Set("host", std::move(host));
    merged.Set("binaries", std::move(binaries));
    merged.Set("metrics", std::move(metrics));
    if (inproc) {
      std::printf(
          "[bench_runner] suite wall-clock %.2fs (engine=inproc, workers=%d, cells=%llu "
          "run + %llu restored, steals=%llu, decode-cache hit rate %.3f)\n",
          suite_seconds, engine_workers,
          static_cast<unsigned long long>(engine_stats.cells_run),
          static_cast<unsigned long long>(engine_stats.cells_restored),
          static_cast<unsigned long long>(engine_stats.steals), decode_stats.HitRate());
    } else if (shard) {
      std::printf(
          "[bench_runner] suite wall-clock %.2fs (engine=shard, workers=%d, cells=%llu "
          "[%llu redispatched, %llu inlined, %llu restored], lease expiries=%llu, "
          "garbled=%llu, quarantined=%llu, degraded=%d)\n",
          suite_seconds, opts.workers,
          static_cast<unsigned long long>(coordinator_stats.cells_total),
          static_cast<unsigned long long>(coordinator_stats.cells_redispatched),
          static_cast<unsigned long long>(coordinator_stats.cells_inlined),
          static_cast<unsigned long long>(coordinator_stats.cells_restored),
          static_cast<unsigned long long>(coordinator_stats.lease_expiries),
          static_cast<unsigned long long>(coordinator_stats.garbled_replies),
          static_cast<unsigned long long>(coordinator_stats.workers_quarantined),
          coordinator_stats.degraded ? 1 : 0);
    } else {
      std::printf(
          "[bench_runner] suite wall-clock %.2fs (engine=fork, jobs=%d, per-binary jobs=%d)\n",
          suite_seconds, total_jobs, inner_jobs);
    }

    if (Status s = json::WriteFileAtomic(opts.out, merged); !s.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[bench_runner] wrote %s (%zu metrics)\n", opts.out.c_str(),
                merged.Find("metrics")->size());
  }

  if (!opts.write_baseline.empty()) {
    if (Status s = json::WriteFileAtomic(opts.write_baseline, merged); !s.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[bench_runner] snapshot written to %s\n", opts.write_baseline.c_str());
  }

  if (!opts.check_determinism.empty()) {
    auto other = json::ParseFile(opts.check_determinism);
    if (!other.ok()) {
      std::fprintf(stderr, "bench_runner: %s\n", other.status().ToString().c_str());
      return 1;
    }
    const int mismatches = CountDeterminismMismatches(merged, *other);
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "bench_runner: determinism check FAILED: %d fidelity/perf metrics differ "
                   "from %s\n",
                   mismatches, opts.check_determinism.c_str());
      return 1;
    }
    std::printf("[bench_runner] determinism check ok: all fidelity/perf metrics identical "
                "to %s\n",
                opts.check_determinism.c_str());
  }

  if (!opts.gate) {
    return exit_code;
  }

  auto baseline = json::ParseFile(opts.baseline);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_runner: no baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }

  // Perf metrics warn while only the seed snapshot exists; once a second
  // snapshot for this mode lands in bench/baselines they gate like fidelity.
  int snapshots = 0;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(opts.baselines_dir, ec)) {
    const std::string file = dirent.path().filename().string();
    if (file.size() < 5 || file.substr(file.size() - 5) != ".json") {
      continue;
    }
    const bool is_quick = file.find("-quick") != std::string::npos;
    if (is_quick == opts.quick) {
      ++snapshots;
    }
  }
  eval::GateOptions gate_options;
  gate_options.gate_perf = snapshots >= 2;

  const eval::GateReport report = eval::CompareAgainstBaseline(merged, *baseline, gate_options);
  PrintGateReport(report, opts.baseline, gate_options.gate_perf);
  return report.ok() ? exit_code : 1;
}

}  // namespace memsentry

int main(int argc, char** argv) { return memsentry::Run(argc, argv); }

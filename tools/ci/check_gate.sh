#!/usr/bin/env bash
# Shared CI gate and step-summary helpers over bench report JSON.
#
# Every CI job that inspects a report with jq goes through this script so the
# metric schema (.metrics[KEY].value, .host.jobs) is spelled out in exactly
# one place. Subcommands:
#
#   require-zero KEY FILE...
#       Fail (exit 1) unless .metrics[KEY].value is exactly 0 in every FILE.
#   require-zero-matching REGEX FILE...
#       Fail unless every metric whose key matches REGEX is exactly 0 in
#       every FILE; also fail if a FILE has no matching metric at all (a
#       silently-renamed key must not pass the gate).
#   wall-summary TITLE FILE...
#       Markdown table of .host.jobs and runner/wall_seconds per FILE, for
#       $GITHUB_STEP_SUMMARY. Missing files are skipped. Reports produced by
#       the in-process engine carry per-cell timings (engine/seconds/...);
#       for those, the five slowest cells follow so a perf regression names
#       its cell instead of hiding in a suite total.
#   wall-budget REPORT REFERENCE
#       Fail if REPORT's runner/wall_seconds exceeds the quick-suite budget
#       recorded in REFERENCE (a BENCH_PR7.json-style trajectory file with
#       .quick_suite.ci_budget.{reference_wall_seconds,max_regression}).
#       MEMSENTRY_WALL_BUDGET_SCALE (default 1.0) scales the budget for
#       slower hosts without editing the committed reference.
#   fastpath-summary ON_FILE OFF_FILE
#       Markdown table comparing runner/seconds/<binary> between a
#       fastpath=on and a fastpath=off report.
#   show FILE
#       Pretty-print FILE, failing the step if it is not valid JSON.
set -euo pipefail

die_usage() {
  echo "usage: $0 {require-zero KEY FILE...|require-zero-matching REGEX FILE...|wall-summary TITLE FILE...|wall-budget REPORT REFERENCE|fastpath-summary ON OFF|show FILE}" >&2
  exit 2
}

[ $# -ge 1 ] || die_usage
cmd=$1
shift

metric() { # metric KEY FILE
  jq -r --arg k "$1" '.metrics[$k].value // "?"' "$2"
}

case "$cmd" in
  require-zero)
    [ $# -ge 2 ] || die_usage
    key=$1
    shift
    fail=0
    for f in "$@"; do
      value=$(jq -r --arg k "$key" '.metrics[$k].value' "$f")
      echo "$f: $key=$value"
      if [ "$value" != "0" ]; then
        echo "::error::$f reports $key=$value (expected 0)"
        fail=1
      fi
    done
    exit "$fail"
    ;;

  require-zero-matching)
    [ $# -ge 2 ] || die_usage
    regex=$1
    shift
    fail=0
    for f in "$@"; do
      matches=$(jq -r --arg re "$regex" \
        '.metrics | to_entries[] | select(.key | test($re)) | "\(.key)=\(.value.value)"' "$f")
      if [ -z "$matches" ]; then
        echo "::error::$f has no metric matching /$regex/"
        fail=1
        continue
      fi
      count=$(printf '%s\n' "$matches" | wc -l)
      echo "$f: $count metric(s) match /$regex/"
      while IFS= read -r line; do
        if [ "${line##*=}" != "0" ]; then
          echo "::error::$f: $line (expected 0)"
          fail=1
        fi
      done <<< "$matches"
    done
    exit "$fail"
    ;;

  wall-summary)
    [ $# -ge 2 ] || die_usage
    title=$1
    shift
    echo "### $title"
    echo ""
    echo "| run | jobs | runner/wall_seconds |"
    echo "|---|---|---|"
    for f in "$@"; do
      [ -f "$f" ] || continue
      jobs=$(jq -r '.host.jobs // "?"' "$f")
      wall=$(metric runner/wall_seconds "$f")
      echo "| $f | $jobs | $wall |"
    done
    for f in "$@"; do
      [ -f "$f" ] || continue
      slowest=$(jq -r '.metrics | to_entries[]
          | select(.key | startswith("engine/seconds/"))
          | "\(.value.value)\t\(.key)"' "$f" | sort -gr | head -5)
      [ -n "$slowest" ] || continue
      echo ""
      echo "#### $f — five slowest engine cells"
      echo ""
      echo "| cell | seconds |"
      echo "|---|---|"
      while IFS=$'\t' read -r secs key; do
        echo "| ${key#engine/seconds/} | $secs |"
      done <<< "$slowest"
    done
    ;;

  wall-budget)
    [ $# -eq 2 ] || die_usage
    report=$1
    reference=$2
    wall=$(metric runner/wall_seconds "$report")
    if [ "$wall" = "?" ]; then
      echo "::error::$report has no runner/wall_seconds metric"
      exit 1
    fi
    scale=${MEMSENTRY_WALL_BUDGET_SCALE:-1.0}
    # jq does the float math so the gate stays dependency-free beyond what
    # the other subcommands already require.
    budget=$(jq -r --argjson scale "$scale" \
      '.quick_suite.ci_budget | .reference_wall_seconds * (1 + .max_regression) * $scale' \
      "$reference")
    echo "$report: runner/wall_seconds=$wall budget=$budget (reference=$reference, scale=$scale)"
    if [ "$(jq -n --argjson w "$wall" --argjson b "$budget" '$w > $b')" = "true" ]; then
      echo "::error::quick-suite wall ${wall}s exceeds budget ${budget}s — interpreter throughput regressed"
      exit 1
    fi
    ;;

  fastpath-summary)
    [ $# -eq 2 ] || die_usage
    on_file=$1
    off_file=$2
    echo "### fast-path on vs off — runner/seconds per binary"
    echo ""
    echo "| binary | fastpath=on (s) | fastpath=off (s) |"
    echo "|---|---|---|"
    jq -r '.metrics | keys[] | select(startswith("runner/seconds/"))' "$on_file" |
      while read -r key; do
        on=$(metric "$key" "$on_file")
        off=$(metric "$key" "$off_file")
        echo "| ${key#runner/seconds/} | $on | $off |"
      done
    for f in "$on_file" "$off_file"; do
      wall=$(metric runner/wall_seconds "$f")
      echo "| total ($f) | $wall | |"
    done
    ;;

  show)
    [ $# -eq 1 ] || die_usage
    jq . "$1"
    ;;

  *)
    die_usage
    ;;
esac

// memsentry — command-line front end for the framework.
//
//   memsentry figure 3|4|5|6 [--instructions N] [--jobs N]   reproduce a figure
//   memsentry attack [--region-bytes N]           run the attack matrix
//   memsentry advise --events F --bytes N [--year Y] [--mpk] [--no-hypervisor]
//   memsentry dump --benchmark 403.gcc --technique mpx [--defense shadowstack]
//                                                  show instrumented IR
//   memsentry replay <crash-bundle-dir>  deterministically re-execute the
//                                        failing cell a crash bundle recorded
//   memsentry replay-campaign <bundle-dir|spec.json>  re-execute a generated
//                                        attack campaign bit-for-bit
//   memsentry serve --socket PATH [--jobs N] [--quiet] [--chaos SPEC]
//                                        resident CampaignEngine behind a
//                                        local UNIX socket: submit/status/
//                                        cancel/wait any suite workload
//                                        without paying a process per run
//   memsentry request --socket PATH 'JSON'  client half of serve: one
//                                        request line in, the response out
//   memsentry coordinate [--workers N] [--chaos SPEC] [--lease SECONDS]
//                                        fault-tolerant shard coordinator:
//                                        spawns N serve workers and drives
//                                        the suite over them under leases
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/eval/coordinator.h"

#include "src/attacks/campaign_gen.h"
#include "src/attacks/harness.h"
#include "src/base/json.h"
#include "src/core/advisor.h"
#include "src/core/memsentry.h"
#include "src/defenses/shadow_stack.h"
#include "src/eval/fault_campaign.h"
#include "src/eval/figures.h"
#include "src/eval/serve.h"
#include "src/ir/printer.h"
#include "src/suite/workloads.h"
#include "src/workloads/synth.h"

namespace memsentry {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: memsentry_cli <figure N | attack | advise | dump> [options]\n"
               "  figure 3|4|5|6 [--instructions N] [--jobs N]\n"
               "  attack [--region-bytes N]\n"
               "  advise [--events F] [--bytes N] [--year Y] [--mpk] [--no-hypervisor]\n"
               "  dump [--benchmark NAME] [--technique sfi|mpx|mpk|vmfunc|crypt|sgx|mprotect]\n"
               "       [--defense shadowstack|none] [--lines N]\n"
               "  replay BUNDLE_DIR   re-execute the cell a crash bundle recorded\n"
               "  replay-campaign BUNDLE_DIR   re-execute a generated attack campaign\n"
               "                      from its bundle (or a bare campaign-spec JSON file)\n"
               "  serve --socket PATH [--jobs N] [--quiet] [--chaos SPEC]\n"
               "                      resident campaign engine behind a local UNIX socket\n"
               "                      (newline-delimited JSON: ping|workloads|submit|status|\n"
               "                      cancel|wait|run_cell|shutdown); --chaos arms the\n"
               "                      deterministic fault harness, e.g.\n"
               "                      kill,hang,garble:seed=7[:one_in=3][:hang_ms=30000]\n"
               "  request --socket PATH 'JSON'   send one request to a running serve\n"
               "                      instance and print the response (exit 0 iff ok)\n"
               "  coordinate [--workers N] [--lease SECONDS] [--chaos SPEC] [--quick]\n"
               "             [--workloads a,b,c] [--instructions N] [--dir PATH]\n"
               "             [--worker-cli PATH] [--json PATH] [--quiet]\n"
               "                      spawn N serve workers and run the suite over them\n"
               "                      with lease-based dispatch, quarantine, and\n"
               "                      in-process degradation (exit 0 iff all clean)\n");
  return 2;
}

const char* Arg(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

void PrintSeries(const std::vector<eval::FigureSeries>& series) {
  std::printf("%-16s", "benchmark");
  for (const auto& s : series) {
    std::printf("%10s", s.config.c_str());
  }
  std::printf("\n");
  const auto profiles = workloads::SpecCpu2006();
  for (size_t b = 0; b < profiles.size(); ++b) {
    std::printf("%-16s", profiles[b].name.c_str());
    for (const auto& s : series) {
      std::printf("%10.2f", s.normalized[b]);
    }
    std::printf("\n");
  }
  std::printf("%-16s", "geomean");
  for (const auto& s : series) {
    std::printf("%10.3f", s.geomean);
  }
  std::printf("\n");
}

int RunFigure(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  eval::ExperimentOptions options;
  options.target_instructions =
      std::strtoull(Arg(argc, argv, "--instructions", "400000"), nullptr, 10);
  options.jobs = std::atoi(Arg(argc, argv, "--jobs", "0"));
  switch (std::atoi(argv[0])) {
    case 3:
      PrintSeries(eval::RunFigure3(options));
      return 0;
    case 4:
      PrintSeries(eval::RunFigure4(options));
      return 0;
    case 5:
      PrintSeries(eval::RunFigure5(options));
      return 0;
    case 6:
      PrintSeries(eval::RunFigure6(options));
      return 0;
    default:
      return Usage();
  }
}

int RunAttack(int argc, char** argv) {
  const uint64_t bytes = std::strtoull(Arg(argc, argv, "--region-bytes", "4096"), nullptr, 10);
  for (const auto& r : attacks::RunAttackMatrix(bytes)) {
    std::printf("%-12s located=%-3s probes=%-4llu read=%-10s write=%-10s %s\n",
                core::TechniqueKindName(r.technique), r.region_located ? "yes" : "no",
                static_cast<unsigned long long>(r.locate_probes),
                attacks::OutcomeName(r.read_outcome), attacks::OutcomeName(r.write_outcome),
                r.detail.c_str());
  }
  return 0;
}

int RunAdvise(int argc, char** argv) {
  core::ScenarioSpec spec;
  spec.events_per_kinstr = std::atof(Arg(argc, argv, "--events", "1.0"));
  spec.region_bytes = std::strtoull(Arg(argc, argv, "--bytes", "4096"), nullptr, 10);
  spec.cpu_year = std::atoi(Arg(argc, argv, "--year", "2017"));
  spec.mpk_available = HasFlag(argc, argv, "--mpk");
  spec.hypervisor_ok = !HasFlag(argc, argv, "--no-hypervisor");
  const core::Recommendation rec = core::Advise(spec);
  std::printf("recommendation: %s\n", core::TechniqueKindName(rec.primary));
  for (auto alt : rec.alternatives) {
    std::printf("alternative:    %s\n", core::TechniqueKindName(alt));
  }
  std::printf("rationale:      %s\n", rec.rationale.c_str());
  return 0;
}

core::TechniqueKind ParseTechnique(const std::string& name) {
  for (int k = 0; k < core::kNumTechniques; ++k) {
    const auto kind = static_cast<core::TechniqueKind>(k);
    std::string lower = core::TechniqueKindName(kind);
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(c));
    }
    if (lower == name) {
      return kind;
    }
  }
  return core::TechniqueKind::kMpx;
}

int RunDump(int argc, char** argv) {
  const workloads::SpecProfile* profile =
      workloads::FindProfile(Arg(argc, argv, "--benchmark", "403.gcc"));
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown benchmark\n");
    return 1;
  }
  const core::TechniqueKind kind = ParseTechnique(Arg(argc, argv, "--technique", "mpx"));
  const std::string defense = Arg(argc, argv, "--defense", "shadowstack");
  const int lines = std::atoi(Arg(argc, argv, "--lines", "60"));

  sim::Machine machine;
  sim::Process process(&machine);
  if (kind == core::TechniqueKind::kVmfunc) {
    (void)process.EnableDune();
  }
  (void)workloads::PrepareWorkloadProcess(process, *profile);
  core::MemSentryConfig config;
  config.technique = kind;
  core::MemSentry ms(&process, config);
  auto region = ms.allocator().Alloc("metadata", 4096);
  workloads::SynthOptions synth;
  synth.target_instructions = 2'000;  // a small module for reading
  ir::Module module = workloads::SynthesizeSpecProgram(*profile, synth);
  if (defense == "shadowstack") {
    defenses::ShadowStackPass pass(region.ok() ? region.value()->base : 0);
    (void)pass.Run(module);
  }
  if (Status s = ms.Protect(module); !s.ok()) {
    std::fprintf(stderr, "protect failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::string text = ir::ToString(module);
  int printed = 0;
  size_t pos = 0;
  while (printed < lines && pos < text.size()) {
    const size_t end = text.find('\n', pos);
    std::printf("%.*s\n", static_cast<int>(end - pos), text.c_str() + pos);
    pos = end + 1;
    ++printed;
  }
  if (pos < text.size()) {
    std::printf("... (%zu more lines)\n", std::count(text.begin() + pos, text.end(), '\n'));
  }
  return 0;
}

// `replay-campaign <bundle-or-spec>`: deterministically re-execute a
// generated attack campaign. Campaigns are pure functions of their serialized
// (spec, config), so the replay runs the exact step list — including shrunk
// minimal reproducers — and compares the outcome against the bundle's
// expectation: 0 when it reproduces, 1 when it diverges.
int ReplayCampaignSpec(const json::Value& replay) {
  auto parsed = attacks::CampaignFromJson(replay);
  if (!parsed.ok()) {
    std::fprintf(stderr, "replay-campaign: %s\n", parsed.status().ToString().c_str());
    return 2;
  }
  std::printf("replay-campaign: %s seed 0x%llx, %zu steps (policy %s, audit %s, budget %llu)\n",
              core::TechniqueKindName(parsed->spec.technique),
              static_cast<unsigned long long>(parsed->spec.seed), parsed->spec.steps.size(),
              parsed->config.mmap_policy ? "on" : "off",
              parsed->config.runtime_audit ? "on" : "off",
              static_cast<unsigned long long>(parsed->config.step_budget));
  for (const auto& step : parsed->spec.steps) {
    std::printf("  step %s a=0x%llx b=0x%llx c=0x%llx\n", attacks::StepKindName(step.kind),
                static_cast<unsigned long long>(step.a),
                static_cast<unsigned long long>(step.b),
                static_cast<unsigned long long>(step.c));
  }
  const attacks::CampaignResult result = attacks::RunCampaign(parsed->spec, parsed->config);
  std::printf("replay-campaign: outcome %s (steps %llu, budget %llu, probes %llu, "
              "repairs %d, quarantines %d, downgrades %d)\n",
              attacks::CampaignOutcomeName(result.outcome),
              static_cast<unsigned long long>(result.steps_run),
              static_cast<unsigned long long>(result.budget_used),
              static_cast<unsigned long long>(result.probes), result.repairs,
              result.quarantines, result.downgrades);
  if (!result.note.empty()) {
    std::printf("replay-campaign: detail: %s\n", result.note.c_str());
  }
  if (!replay.StringOr("expected", "").empty()) {
    if (result.outcome == parsed->expected) {
      std::printf("replay-campaign: reproduced the recorded outcome (%s)\n",
                  attacks::CampaignOutcomeName(parsed->expected));
      return 0;
    }
    std::fprintf(stderr, "replay-campaign: outcome diverged: bundle recorded %s, replay got %s\n",
                 attacks::CampaignOutcomeName(parsed->expected),
                 attacks::CampaignOutcomeName(result.outcome));
    return 1;
  }
  return 0;
}

// `serve` — bind the suite registry's workloads behind a local UNIX socket.
// The engine outlives every request, so repeated submissions share one warm
// decode cache and run memo; src/eval/serve.h documents the wire protocol.
int RunServe(int argc, char** argv) {
  eval::ServeOptions options;
  options.socket_path = Arg(argc, argv, "--socket", "");
  options.jobs = std::atoi(Arg(argc, argv, "--jobs", "0"));
  options.quiet = HasFlag(argc, argv, "--quiet");
  options.registry = &suite::SuiteRegistry();
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "serve: --socket PATH is required\n");
    return Usage();
  }
  if (const std::string spec = Arg(argc, argv, "--chaos", ""); !spec.empty()) {
    auto chaos = eval::ParseChaosSpec(spec);
    if (!chaos.ok()) {
      std::fprintf(stderr, "serve: %s\n", chaos.status().ToString().c_str());
      return Usage();
    }
    options.chaos = *chaos;
  }
  return eval::ServeLoop(options);
}

// `coordinate` — the fault-tolerant shard coordinator (DESIGN.md §12):
// spawns N `serve` workers (this same binary) and drives every requested
// workload's cells over them under time-bounded leases, with quarantine and
// in-process degradation, merging a report byte-identical to a serial run.
int RunCoordinate(int argc, char** argv, const std::string& self) {
  eval::CoordinatorOptions options;
  options.worker_cli = Arg(argc, argv, "--worker-cli", self.c_str());
  options.workers = std::atoi(Arg(argc, argv, "--workers", "3"));
  options.lease_seconds = std::atof(Arg(argc, argv, "--lease", "20"));
  options.quiet = HasFlag(argc, argv, "--quiet");
  options.socket_dir = Arg(argc, argv, "--dir", "");
  if (options.socket_dir.empty()) {
    options.socket_dir = "/tmp/memsentry-coord-" + std::to_string(::getpid());
  }
  if (const std::string spec = Arg(argc, argv, "--chaos", ""); !spec.empty()) {
    auto chaos = eval::ParseChaosSpec(spec);
    if (!chaos.ok()) {
      std::fprintf(stderr, "coordinate: %s\n", chaos.status().ToString().c_str());
      return Usage();
    }
    options.chaos = *chaos;
  }

  eval::WorkloadOptions wo;
  wo.quick = HasFlag(argc, argv, "--quick");
  wo.experiment.target_instructions =
      std::strtoull(Arg(argc, argv, "--instructions", "400000"), nullptr, 10);

  const eval::WorkloadRegistry& registry = suite::SuiteRegistry();
  std::vector<std::string> names;
  if (const std::string list = Arg(argc, argv, "--workloads", ""); !list.empty()) {
    size_t start = 0;
    while (start <= list.size()) {
      const size_t comma = list.find(',', start);
      names.push_back(list.substr(start, comma == std::string::npos ? comma : comma - start));
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
  } else {
    for (const eval::Workload& workload : registry.workloads()) {
      names.push_back(workload.name);
    }
  }

  eval::ShardCoordinator coordinator(&registry, options);
  for (const std::string& name : names) {
    if (coordinator.Submit(name, wo) == 0) {
      std::fprintf(stderr, "coordinate: unknown workload: %s\n", name.c_str());
      return 2;
    }
  }
  const int status = coordinator.Run();
  const eval::CoordinatorStats& stats = coordinator.stats();
  std::fprintf(stderr,
               "coordinate: %zu workloads, %llu cells (%llu redispatched, %llu inlined, "
               "%llu lease expiries, %llu garbled, %llu quarantined, degraded=%d) -> %d\n",
               names.size(), static_cast<unsigned long long>(stats.cells_total),
               static_cast<unsigned long long>(stats.cells_redispatched),
               static_cast<unsigned long long>(stats.cells_inlined),
               static_cast<unsigned long long>(stats.lease_expiries),
               static_cast<unsigned long long>(stats.garbled_replies),
               static_cast<unsigned long long>(stats.workers_quarantined),
               stats.degraded ? 1 : 0, status);

  if (const std::string json_path = Arg(argc, argv, "--json", ""); !json_path.empty()) {
    json::Value merged = json::Value::Object();
    json::Value metrics = json::Value::Object();
    json::Value jobs = json::Value::Array();
    for (const auto& report : coordinator.reports()) {
      json::Value job = json::Value::Object();
      job.Set("workload", report->workload);
      job.Set("state", eval::JobStateName(report->state));
      job.Set("status", report->status);
      job.Set("wall_seconds", report->wall_seconds);
      jobs.Append(std::move(job));
      for (const auto& [key, value] : report->report.metrics().members()) {
        metrics.Set(key, value);
      }
    }
    merged.Set("jobs", std::move(jobs));
    json::Value coord = json::Value::Object();
    coord.Set("cells_total", stats.cells_total);
    coord.Set("cells_redispatched", stats.cells_redispatched);
    coord.Set("cells_inlined", stats.cells_inlined);
    coord.Set("lease_expiries", stats.lease_expiries);
    coord.Set("garbled_replies", stats.garbled_replies);
    coord.Set("workers_quarantined", stats.workers_quarantined);
    coord.Set("workers_respawned", stats.workers_respawned);
    coord.Set("degraded", stats.degraded);
    merged.Set("coordinator", std::move(coord));
    merged.Set("metrics", std::move(metrics));
    if (Status s = json::WriteFileAtomic(json_path, merged); !s.ok()) {
      std::fprintf(stderr, "coordinate: write %s: %s\n", json_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  return status;
}

// `request` — the client half of `serve`: send one JSON request line to a
// running server and print the response line. Exit 0 only when the server
// answered {"ok":true}, so shell smoke tests can chain requests with `&&`.
int RunRequest(int argc, char** argv) {
  const std::string socket_path = Arg(argc, argv, "--socket", "");
  std::string raw;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0) {
      ++i;  // skip the path value
      continue;
    }
    raw = argv[i];
  }
  if (socket_path.empty() || raw.empty()) {
    std::fprintf(stderr, "request: usage: request --socket PATH 'JSON'\n");
    return Usage();
  }
  auto request = json::Parse(raw);
  if (!request.ok()) {
    std::fprintf(stderr, "request: not valid JSON: %s\n", request.status().ToString().c_str());
    return 2;
  }
  auto response = eval::ServeRequest(socket_path, request.value());
  if (!response.ok()) {
    std::fprintf(stderr, "request: %s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->Dump(0).c_str());
  return response->BoolOr("ok", false) ? 0 : 1;
}

int RunReplayCampaign(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  const std::string path = argv[0];
  // Accept a crash-bundle directory (manifest.json holds the replay spec)
  // or a bare campaign-spec JSON file.
  if (auto manifest = json::ParseFile(path + "/manifest.json"); manifest.ok()) {
    const json::Value* replay = manifest->Find("replay");
    if (replay == nullptr || !replay->is_object()) {
      std::fprintf(stderr, "replay-campaign: bundle has no replay spec (cell \"%s\")\n",
                   manifest->StringOr("cell", "?").c_str());
      return 2;
    }
    return ReplayCampaignSpec(*replay);
  }
  auto spec = json::ParseFile(path);
  if (!spec.ok()) {
    std::fprintf(stderr, "replay-campaign: %s is neither a bundle dir nor a spec file (%s)\n",
                 path.c_str(), spec.status().ToString().c_str());
    return 2;
  }
  return ReplayCampaignSpec(*spec);
}

// `replay <bundle>`: parse the bundle's manifest.json and deterministically
// re-execute the cell it recorded. Fault-campaign cells derive all their
// randomness from (seed, technique, site), so the replay is bit-for-bit the
// original run:
//   - forced-crash bundles re-run with the same force_crash hook and abort
//     at the same point (exit mirrors the original SIGABRT death);
//   - escape bundles re-run the cell and compare the outcome against the
//     manifest's expected outcome: 0 when it reproduces, 1 when it doesn't.
int RunReplay(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  const std::string bundle = argv[0];
  auto manifest = json::ParseFile(bundle + "/manifest.json");
  if (!manifest.ok()) {
    std::fprintf(stderr, "replay: %s\n", manifest.status().ToString().c_str());
    return 2;
  }
  const json::Value* replay = manifest->Find("replay");
  if (replay == nullptr || !replay->is_object()) {
    std::fprintf(stderr, "replay: bundle has no replay spec (cell \"%s\", reason \"%s\")\n",
                 manifest->StringOr("cell", "?").c_str(),
                 manifest->StringOr("reason", "?").c_str());
    return 2;
  }
  const std::string kind = replay->StringOr("kind", "");
  if (kind == "attack_campaign") {
    return ReplayCampaignSpec(*replay);
  }
  if (kind != "fault_cell") {
    std::fprintf(stderr, "replay: unsupported replay kind \"%s\"\n", kind.c_str());
    return 2;
  }

  const std::string technique = replay->StringOr("technique", "");
  const std::string site = replay->StringOr("site", "");
  eval::FaultCampaignOptions options;
  options.seed = static_cast<uint64_t>(replay->NumberOr("seed", 0));
  options.force_crash = replay->StringOr("force_crash", "");
  const std::string expected = replay->StringOr("expected", "");

  // Resolve the cell by its names against the matrix — the names in the
  // manifest are exactly the names the matrix prints, so an unknown pair
  // means a stale or hand-edited bundle.
  for (const auto& [cell_kind, cell_site] : eval::FaultMatrixCells()) {
    if (technique != core::TechniqueKindName(cell_kind) ||
        site != sim::FaultSiteName(cell_site)) {
      continue;
    }
    std::printf("replay: cell %s/%s seed 0x%llx%s\n", technique.c_str(), site.c_str(),
                static_cast<unsigned long long>(options.seed),
                options.force_crash.empty() ? "" : " (forced crash armed)");
    // A forced-crash replay aborts inside RunFaultCell, reproducing the
    // original death; control only returns here for surviving cells.
    const eval::FaultCellResult cell = eval::RunFaultCell(cell_kind, cell_site, options);
    std::printf("replay: outcome %s (repairs %d, quarantines %d, downgrades %d)\n",
                eval::ContainmentName(cell.outcome), cell.repairs, cell.quarantines,
                cell.downgrades);
    if (!cell.detail.empty()) {
      std::printf("replay: detail: %s\n", cell.detail.c_str());
    }
    if (!expected.empty()) {
      if (expected == eval::ContainmentName(cell.outcome)) {
        std::printf("replay: reproduced the recorded outcome (%s)\n", expected.c_str());
        return 0;
      }
      std::fprintf(stderr, "replay: outcome diverged: bundle recorded %s, replay got %s\n",
                   expected.c_str(), eval::ContainmentName(cell.outcome));
      return 1;
    }
    return 0;
  }
  std::fprintf(stderr, "replay: unknown fault-matrix cell %s/%s\n", technique.c_str(),
               site.c_str());
  return 2;
}

}  // namespace
}  // namespace memsentry

int main(int argc, char** argv) {
  using namespace memsentry;
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "figure") {
    return RunFigure(argc - 2, argv + 2);
  }
  if (command == "attack") {
    return RunAttack(argc - 2, argv + 2);
  }
  if (command == "advise") {
    return RunAdvise(argc - 2, argv + 2);
  }
  if (command == "dump") {
    return RunDump(argc - 2, argv + 2);
  }
  if (command == "replay") {
    return RunReplay(argc - 2, argv + 2);
  }
  if (command == "replay-campaign") {
    return RunReplayCampaign(argc - 2, argv + 2);
  }
  if (command == "serve") {
    return RunServe(argc - 2, argv + 2);
  }
  if (command == "request") {
    return RunRequest(argc - 2, argv + 2);
  }
  if (command == "coordinate") {
    // Workers are this same binary; /proc/self/exe survives argv[0] being a
    // bare name found via PATH.
    std::string self = argv[0];
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
      buf[n] = '\0';
      self = buf;
    }
    return RunCoordinate(argc - 2, argv + 2, self);
  }
  return Usage();
}
